#include "sjoin/testing/naive_reference.h"

#include <algorithm>

#include "sjoin/common/check.h"

namespace sjoin {
namespace testing {

double NaiveJoiningEcbAt(const StochasticProcess& partner,
                         const StreamHistory& partner_history, Time t0,
                         Value v, Time dt) {
  SJOIN_CHECK_GE(dt, 1);
  double sum = 0.0;
  for (Time step = 1; step <= dt; ++step) {
    sum += partner.Predict(partner_history, t0 + step).Prob(v);
  }
  return sum;
}

double NaiveCachingEcbAt(const StochasticProcess& reference,
                         const StreamHistory& history, Time t0, Value v,
                         Time dt) {
  SJOIN_CHECK_GE(dt, 1);
  double survive = 1.0;
  for (Time step = 1; step <= dt; ++step) {
    survive *= 1.0 - reference.Predict(history, t0 + step).Prob(v);
  }
  return 1.0 - survive;
}

double NaiveWindowedEcbAt(const EcbFn& base, Time arrival, Time now,
                          Time window, Time horizon, Time dt) {
  SJOIN_CHECK_GE(dt, 1);
  Time remaining = arrival + window - now;
  if (remaining <= 0) return 0.0;
  double cap = base.At(std::min(remaining, horizon));
  return std::min(base.At(dt), cap);
}

double NaiveHeebFromEcb(const EcbFn& ecb, const LifetimeFn& lifetime,
                        Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = ecb.At(1) * lifetime.At(1);
  for (Time dt = 2; dt <= horizon; ++dt) {
    h += (ecb.At(dt) - ecb.At(dt - 1)) * lifetime.At(dt);
  }
  return h;
}

double NaiveJoiningHeeb(const StochasticProcess& partner,
                        const StreamHistory& partner_history, Time t0,
                        Value v, const LifetimeFn& lifetime, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = 0.0;
  for (Time dt = 1; dt <= horizon; ++dt) {
    h += partner.Predict(partner_history, t0 + dt).Prob(v) *
         lifetime.At(dt);
  }
  return h;
}

double NaiveCachingHeeb(const StochasticProcess& reference,
                        const StreamHistory& history, Time t0, Value v,
                        const LifetimeFn& lifetime, Time horizon) {
  SJOIN_CHECK_GE(horizon, 1);
  double h = 0.0;
  double survive = 1.0;
  for (Time dt = 1; dt <= horizon; ++dt) {
    double p = reference.Predict(history, t0 + dt).Prob(v);
    h += survive * p * lifetime.At(dt);
    survive *= 1.0 - p;
  }
  return h;
}

NaiveHeebJoinPolicy::NaiveHeebJoinPolicy(const StochasticProcess* r_process,
                                         const StochasticProcess* s_process,
                                         double alpha, Time horizon,
                                         const LifetimeFn* lifetime)
    : r_process_(r_process),
      s_process_(s_process),
      exp_lifetime_(alpha),
      horizon_(horizon > 0 ? horizon : ExpHorizon(alpha)),
      lifetime_(lifetime) {
  SJOIN_CHECK(r_process != nullptr && s_process != nullptr);
}

double NaiveHeebJoinPolicy::Score(const Tuple& tuple,
                                  const PolicyContext& ctx) {
  if (ctx.window.has_value() && !InWindow(tuple, ctx.now, ctx.window)) {
    return 0.0;
  }
  const LifetimeFn& lifetime =
      lifetime_ != nullptr ? *lifetime_
                           : static_cast<const LifetimeFn&>(exp_lifetime_);
  Time max_dt = horizon_;
  if (ctx.window.has_value()) {
    Time remaining = tuple.arrival + *ctx.window - ctx.now;
    if (remaining < max_dt) max_dt = remaining;
  }
  StreamSide partner = Partner(tuple.side);
  const StochasticProcess* process =
      partner == StreamSide::kR ? r_process_ : s_process_;
  const StreamHistory* history =
      partner == StreamSide::kR ? ctx.history_r : ctx.history_s;
  double h = 0.0;
  for (Time dt = 1; dt <= max_dt; ++dt) {
    h += process->Predict(*history, ctx.now + dt).Prob(tuple.value) *
         lifetime.At(dt);
  }
  return h;
}

NaiveHeebCachingPolicy::NaiveHeebCachingPolicy(
    const StochasticProcess* reference, double alpha, Time horizon,
    const LifetimeFn* lifetime)
    : reference_(reference),
      exp_lifetime_(alpha),
      horizon_(horizon > 0 ? horizon : ExpHorizon(alpha)),
      lifetime_(lifetime) {
  SJOIN_CHECK(reference != nullptr);
}

double NaiveHeebCachingPolicy::Score(Value v, const CachingContext& ctx) {
  const LifetimeFn& lifetime =
      lifetime_ != nullptr ? *lifetime_
                           : static_cast<const LifetimeFn&>(exp_lifetime_);
  return NaiveCachingHeeb(*reference_, *ctx.history, ctx.now, v, lifetime,
                          horizon_);
}

}  // namespace testing
}  // namespace sjoin
