#include "sjoin/testing/brute_force_flow.h"

#include <bit>
#include <limits>
#include <sstream>

#include "sjoin/common/check.h"

namespace sjoin {
namespace testing {

AssignmentInstance MakeRandomAssignmentInstance(Rng& rng, int max_workers,
                                                int max_jobs) {
  SJOIN_CHECK_GE(max_workers, 1);
  SJOIN_CHECK_GE(max_jobs, 1);
  AssignmentInstance instance;
  instance.num_workers = static_cast<int>(rng.UniformInt(1, max_workers));
  instance.num_jobs = static_cast<int>(rng.UniformInt(1, max_jobs));
  instance.has_arc.assign(
      static_cast<std::size_t>(instance.num_workers),
      std::vector<bool>(static_cast<std::size_t>(instance.num_jobs), false));
  instance.cost.assign(
      static_cast<std::size_t>(instance.num_workers),
      std::vector<double>(static_cast<std::size_t>(instance.num_jobs), 0.0));
  for (int w = 0; w < instance.num_workers; ++w) {
    for (int j = 0; j < instance.num_jobs; ++j) {
      if (rng.UniformReal() >= 0.4) {
        instance.has_arc[static_cast<std::size_t>(w)]
                        [static_cast<std::size_t>(j)] = true;
        instance.cost[static_cast<std::size_t>(w)]
                     [static_cast<std::size_t>(j)] =
            rng.UniformReal() * 8.0 - 4.0;
      }
    }
  }
  instance.target_flow =
      rng.UniformInt(0, std::min(instance.num_workers, instance.num_jobs) + 1);
  return instance;
}

void BuildAssignmentGraph(
    const AssignmentInstance& instance, FlowGraph* graph, NodeId* source,
    NodeId* sink, std::vector<std::vector<std::int32_t>>* worker_arcs) {
  *source = graph->AddNode();
  *sink = graph->AddNode();
  NodeId first_worker = graph->AddNodes(instance.num_workers);
  NodeId first_job = graph->AddNodes(instance.num_jobs);
  if (worker_arcs != nullptr) {
    worker_arcs->assign(
        static_cast<std::size_t>(instance.num_workers),
        std::vector<std::int32_t>(static_cast<std::size_t>(instance.num_jobs),
                                  -1));
  }
  for (int w = 0; w < instance.num_workers; ++w) {
    graph->AddArc(*source, first_worker + w, 1, 0.0);
  }
  for (int w = 0; w < instance.num_workers; ++w) {
    for (int j = 0; j < instance.num_jobs; ++j) {
      if (!instance.has_arc[static_cast<std::size_t>(w)]
                           [static_cast<std::size_t>(j)]) {
        continue;
      }
      std::int32_t arc = graph->AddArc(
          first_worker + w, first_job + j, 1,
          instance.cost[static_cast<std::size_t>(w)]
                       [static_cast<std::size_t>(j)]);
      if (worker_arcs != nullptr) {
        (*worker_arcs)[static_cast<std::size_t>(w)]
                      [static_cast<std::size_t>(j)] = arc;
      }
    }
  }
  for (int j = 0; j < instance.num_jobs; ++j) {
    graph->AddArc(first_job + j, *sink, 1, 0.0);
  }
}

std::vector<double> BruteForceAssignmentCosts(
    const AssignmentInstance& instance) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  SJOIN_CHECK_LE(instance.num_jobs, 20);
  std::size_t num_masks = std::size_t{1}
                          << static_cast<std::size_t>(instance.num_jobs);
  // best[mask] = min cost of matching exactly the job set `mask` using the
  // workers considered so far, each at most once.
  std::vector<double> best(num_masks, kInf);
  best[0] = 0.0;
  for (int w = 0; w < instance.num_workers; ++w) {
    std::vector<double> next = best;  // Worker w left unmatched.
    for (std::size_t mask = 0; mask < num_masks; ++mask) {
      if (best[mask] == kInf) continue;
      for (int j = 0; j < instance.num_jobs; ++j) {
        std::size_t bit = std::size_t{1} << static_cast<std::size_t>(j);
        if ((mask & bit) != 0) continue;
        if (!instance.has_arc[static_cast<std::size_t>(w)]
                             [static_cast<std::size_t>(j)]) {
          continue;
        }
        double candidate =
            best[mask] + instance.cost[static_cast<std::size_t>(w)]
                                      [static_cast<std::size_t>(j)];
        if (candidate < next[mask | bit]) next[mask | bit] = candidate;
      }
    }
    best.swap(next);
  }
  int max_size = 0;
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (best[mask] < kInf) {
      max_size = std::max(max_size, std::popcount(mask));
    }
  }
  std::vector<double> by_size(static_cast<std::size_t>(max_size) + 1, kInf);
  for (std::size_t mask = 0; mask < num_masks; ++mask) {
    if (best[mask] == kInf) continue;
    std::size_t size = static_cast<std::size_t>(std::popcount(mask));
    if (best[mask] < by_size[size]) by_size[size] = best[mask];
  }
  return by_size;
}

std::string CheckFlowConsistency(const FlowGraph& graph, NodeId source,
                                 NodeId sink) {
  std::vector<std::int64_t> net(static_cast<std::size_t>(graph.NumNodes()),
                                0);
  for (NodeId node = 0; node < graph.NumNodes(); ++node) {
    const auto& arcs = graph.AdjacencyOf(node);
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(arcs.size());
         ++i) {
      if (!arcs[static_cast<std::size_t>(i)].is_forward) continue;
      std::int64_t flow = graph.FlowOn(node, i);
      if (flow < 0) {
        std::ostringstream out;
        out << "negative flow " << flow << " on arc " << node << "->"
            << arcs[static_cast<std::size_t>(i)].to;
        return out.str();
      }
      net[static_cast<std::size_t>(node)] -= flow;
      net[static_cast<std::size_t>(arcs[static_cast<std::size_t>(i)].to)] +=
          flow;
    }
  }
  for (NodeId node = 0; node < graph.NumNodes(); ++node) {
    if (node == source || node == sink) continue;
    if (net[static_cast<std::size_t>(node)] != 0) {
      std::ostringstream out;
      out << "flow conservation violated at node " << node << " (net "
          << net[static_cast<std::size_t>(node)] << ")";
      return out.str();
    }
  }
  if (net[static_cast<std::size_t>(source)] +
          net[static_cast<std::size_t>(sink)] !=
      0) {
    return "source outflow does not equal sink inflow";
  }
  return std::string();
}

}  // namespace testing
}  // namespace sjoin
