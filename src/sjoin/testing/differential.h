#ifndef SJOIN_TESTING_DIFFERENTIAL_H_
#define SJOIN_TESTING_DIFFERENTIAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// The differential driver: runs optimized-vs-oracle comparisons over
/// thousands of seeded random trials. Each suite is a pure function of one
/// seed returning nullopt (trial passed) or a mismatch description, so any
/// failure reproduces from the reported seed alone:
///
///   fuzz_differential --suite=<name> --seed=<seed> --trials=1
///
/// The same registry backs both the ctest suites (label `differential`,
/// tests/differential_*_test.cc) and the standalone fuzz_differential soak
/// binary.

namespace sjoin {
namespace testing {

/// Trials 0..trials-1 of a suite run with seeds base_seed + index. The
/// default base makes runs reproducible across machines; soak runs pass
/// fresh bases to cover new ground.
inline constexpr std::uint64_t kDifferentialBaseSeed = 20050601;

/// One optimized-vs-oracle comparison family.
struct DifferentialSuite {
  const char* name;
  const char* description;
  /// Trial count used by the ctest suites (before the SJOIN_DIFF_TRIALS
  /// environment override).
  int default_trials;
  /// Runs one trial; nullopt on agreement, else a mismatch description.
  std::optional<std::string> (*run)(std::uint64_t seed);
};

/// All registered suites.
const std::vector<DifferentialSuite>& AllDifferentialSuites();

/// Lookup by name; nullptr if unknown.
const DifferentialSuite* FindDifferentialSuite(std::string_view name);

/// Outcome of a batch of trials.
struct DifferentialReport {
  std::string suite;
  int trials_run = 0;
  int failures = 0;
  std::uint64_t first_failing_seed = 0;
  std::string first_failure;

  bool ok() const { return failures == 0; }

  /// Human-readable outcome; on failure includes the first mismatch and
  /// the exact fuzz_differential command that reproduces it.
  std::string Summary() const;
};

/// Runs `trials` consecutive seeds of `suite` starting at `base_seed`.
DifferentialReport RunDifferentialSuite(const DifferentialSuite& suite,
                                        std::uint64_t base_seed, int trials);

/// Trial count for ctest runs: the SJOIN_DIFF_TRIALS environment variable
/// when set to a positive integer (CI sanitizer jobs use 100), else
/// `fallback`.
int TrialCountFromEnv(int fallback);

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_DIFFERENTIAL_H_
