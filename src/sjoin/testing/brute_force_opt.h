#ifndef SJOIN_TESTING_BRUTE_FORCE_OPT_H_
#define SJOIN_TESTING_BRUTE_FORCE_OPT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/types.h"

/// \file
/// Brute-force offline OPT for the joining problem: exhaustive search over
/// every feasible eviction schedule, memoized on (time, cache content).
/// Exponential in general — keep instances tiny (length <= ~10, capacity
/// <= 3) — but exact, which makes it the oracle for OptOfflinePolicy's
/// min-cost-flow formulation.

namespace sjoin {
namespace testing {

/// Maximum number of cache-produced result tuples any replacement schedule
/// can achieve on the realization pair (r, s) with the given capacity and
/// optional sliding window — the same quantity JoinSimulator counts in
/// total_results (warmup 0) and OptOfflinePolicy::optimal_benefit().
std::int64_t BruteForceOfflineOptBenefit(const std::vector<Value>& r,
                                         const std::vector<Value>& s,
                                         std::size_t capacity,
                                         std::optional<Time> window);

}  // namespace testing
}  // namespace sjoin

#endif  // SJOIN_TESTING_BRUTE_FORCE_OPT_H_
