#include "sjoin/testing/scenario_generator.h"

#include <cmath>
#include <sstream>

#include "sjoin/common/check.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/regime_switching_process.h"
#include "sjoin/stochastic/scripted_process.h"
#include "sjoin/stochastic/seasonal_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace testing {
namespace {

/// Random pmf with strictly positive, generically distinct masses.
/// Uniform masses would create exact score ties whose resolution is
/// sensitive to last-bit float differences; distinct masses keep ties
/// measure-zero so differential comparisons stay meaningful.
DiscreteDistribution RandomPmf(Rng& rng, Value lo, int support) {
  std::vector<double> masses(static_cast<std::size_t>(support));
  for (double& mass : masses) mass = 0.05 + rng.UniformReal();
  return DiscreteDistribution::FromMasses(lo, std::move(masses));
}

/// Zero-mean bounded noise for trend-style processes.
DiscreteDistribution RandomNoise(Rng& rng) {
  double sigma = 0.7 + 1.3 * rng.UniformReal();
  Value bound = rng.UniformInt(2, 5);
  return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, sigma, -bound,
                                                          bound);
}

std::unique_ptr<StochasticProcess> MakeTrend(Rng& rng, double slope,
                                             std::string* description) {
  double intercept = static_cast<double>(rng.UniformInt(-5, 5));
  std::ostringstream out;
  out << "trend(" << slope << ")";
  *description = out.str();
  return std::make_unique<LinearTrendProcess>(slope, intercept,
                                              RandomNoise(rng));
}

/// Zipf-shaped masses over [lo, lo + support) with a small multiplicative
/// jitter — same tie-avoidance rationale as RandomPmf, same skew profile
/// as DiscreteDistribution::Zipf.
DiscreteDistribution SkewedPmf(Rng& rng, Value lo, int support, double s) {
  std::vector<double> masses(static_cast<std::size_t>(support));
  for (std::size_t i = 0; i < masses.size(); ++i) {
    masses[i] = std::pow(static_cast<double>(i + 1), -s) *
                (0.9 + 0.2 * rng.UniformReal());
  }
  return DiscreteDistribution::FromMasses(lo, std::move(masses));
}

}  // namespace

std::unique_ptr<StochasticProcess> ScenarioGenerator::SampleProcess(
    Rng& rng, Time length, std::string* description) const {
  // kAny adds the history-dependent kinds on top of the independent pool.
  int num_kinds = options_.pool == Pool::kAny ? 6 : 4;
  switch (rng.UniformInt(0, num_kinds - 1)) {
    case 0: {
      Value lo = rng.UniformInt(-4, 4);
      int support = static_cast<int>(rng.UniformInt(3, 9));
      *description = "stationary";
      return std::make_unique<StationaryProcess>(RandomPmf(rng, lo, support));
    }
    case 1: {
      double slope = static_cast<double>(rng.UniformInt(-4, 4)) / 2.0;
      return MakeTrend(rng, slope, description);
    }
    case 2: {
      double mean = static_cast<double>(rng.UniformInt(-3, 3));
      double amplitude = 2.0 + 6.0 * rng.UniformReal();
      double period = 6.0 + 18.0 * rng.UniformReal();
      double phase = 6.28318530717958647692 * rng.UniformReal();
      *description = "seasonal";
      return std::make_unique<SeasonalProcess>(mean, amplitude, period, phase,
                                               RandomNoise(rng));
    }
    case 3: {
      // Script covers exactly the run; predictions beyond it are the empty
      // pmf (a tuple that joins nothing), which both sides must agree on.
      std::vector<DiscreteDistribution> script;
      script.reserve(static_cast<std::size_t>(length));
      Value base = rng.UniformInt(-3, 3);
      for (Time t = 0; t < length; ++t) {
        base += rng.UniformInt(-1, 1);
        script.push_back(RandomPmf(
            rng, base, static_cast<int>(rng.UniformInt(2, 4))));
      }
      *description = "scripted";
      return std::make_unique<ScriptedProcess>(std::move(script));
    }
    case 4: {
      double drift = 2.0 * rng.UniformReal() - 1.0;
      double sigma = 0.8 + 0.7 * rng.UniformReal();
      Value initial = rng.UniformInt(-5, 5);
      *description = "walk";
      return std::make_unique<RandomWalkProcess>(
          DiscreteDistribution::DiscretizedNormal(drift, sigma), initial);
    }
    default: {
      double phi0 = 2.0 * rng.UniformReal() - 1.0;
      double phi1 = 0.3 + 0.6 * rng.UniformReal();
      double sigma = 0.8 + 0.7 * rng.UniformReal();
      Value initial = static_cast<Value>(std::lround(phi0 / (1.0 - phi1)));
      *description = "ar1";
      return std::make_unique<Ar1Process>(phi0, phi1, sigma, initial);
    }
  }
}

std::unique_ptr<StochasticProcess> ScenarioGenerator::SampleSkewedProcess(
    Rng& rng, std::string* description) const {
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      // Stationary Zipf popularity: a hot head the static hash pins onto
      // one shard.
      double s = 0.7 + 0.7 * rng.UniformReal();
      Value lo = rng.UniformInt(-4, 4);
      int support = static_cast<int>(rng.UniformInt(12, 32));
      std::ostringstream out;
      out << "zipf(" << s << ")";
      *description = out.str();
      return std::make_unique<StationaryProcess>(
          SkewedPmf(rng, lo, support, s));
    }
    case 1: {
      // Bursty arrivals: short hot phases of a few values alternating with
      // calm, near-uniform wide phases.
      Value lo = rng.UniformInt(-4, 2);
      std::vector<RegimeSwitchingProcess::Phase> phases;
      phases.push_back(
          {SkewedPmf(rng, lo + rng.UniformInt(0, 6),
                     static_cast<int>(rng.UniformInt(3, 5)),
                     1.2 + 0.4 * rng.UniformReal()),
           rng.UniformInt(3, 8)});
      phases.push_back(
          {SkewedPmf(rng, lo, static_cast<int>(rng.UniformInt(12, 24)),
                     0.1 + 0.3 * rng.UniformReal()),
           rng.UniformInt(3, 8)});
      *description = "bursty";
      return std::make_unique<RegimeSwitchingProcess>(std::move(phases));
    }
    default: {
      // Regime switch: the Zipf hot window jumps to a different value
      // range each phase, so yesterday's balanced partition is today's
      // skewed one.
      int num_phases = static_cast<int>(rng.UniformInt(2, 4));
      Value lo = rng.UniformInt(-6, 0);
      std::vector<RegimeSwitchingProcess::Phase> phases;
      phases.reserve(static_cast<std::size_t>(num_phases));
      for (int p = 0; p < num_phases; ++p) {
        phases.push_back(
            {SkewedPmf(rng, lo + rng.UniformInt(0, 12),
                       static_cast<int>(rng.UniformInt(6, 14)),
                       0.9 + 0.6 * rng.UniformReal()),
             rng.UniformInt(6, 16)});
      }
      *description = "regime";
      return std::make_unique<RegimeSwitchingProcess>(std::move(phases));
    }
  }
}

Scenario ScenarioGenerator::Sample(std::uint64_t seed) const {
  Rng rng(seed);
  Scenario scenario;
  scenario.seed = seed;
  scenario.length = rng.UniformInt(options_.min_length, options_.max_length);
  scenario.capacity = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(options_.min_capacity),
                     static_cast<std::int64_t>(options_.max_capacity)));
  scenario.warmup = rng.UniformInt(0, scenario.length / 4);
  if (rng.UniformReal() < options_.window_probability) {
    scenario.window =
        rng.UniformInt(2, static_cast<Time>(3 * scenario.capacity) + 4);
  }
  scenario.alpha = 2.0 + 10.0 * rng.UniformReal();
  scenario.horizon = rng.UniformInt(4, options_.max_horizon);

  std::string r_kind;
  std::string s_kind;
  switch (options_.pool) {
    case Pool::kAny:
    case Pool::kIndependent:
      scenario.r_process = SampleProcess(rng, scenario.length, &r_kind);
      scenario.s_process = SampleProcess(rng, scenario.length, &s_kind);
      break;
    case Pool::kEqualSlopeTrends: {
      std::int64_t slope = rng.UniformInt(1, 2);
      if (rng.UniformReal() < 0.5) slope = -slope;
      scenario.r_process =
          MakeTrend(rng, static_cast<double>(slope), &r_kind);
      scenario.s_process =
          MakeTrend(rng, static_cast<double>(slope), &s_kind);
      break;
    }
    case Pool::kSkewed:
      scenario.r_process = SampleSkewedProcess(rng, &r_kind);
      scenario.s_process = SampleSkewedProcess(rng, &s_kind);
      break;
    case Pool::kWalks: {
      for (std::string* kind : {&r_kind, &s_kind}) {
        double drift = 2.0 * rng.UniformReal() - 1.0;
        double sigma = 0.8 + 0.7 * rng.UniformReal();
        auto process = std::make_unique<RandomWalkProcess>(
            DiscreteDistribution::DiscretizedNormal(drift, sigma),
            rng.UniformInt(-5, 5));
        *kind = "walk";
        (kind == &r_kind ? scenario.r_process : scenario.s_process) =
            std::move(process);
      }
      break;
    }
  }
  std::ostringstream description;
  description << r_kind << "/" << s_kind << " len=" << scenario.length
              << " cap=" << scenario.capacity << " warmup=" << scenario.warmup
              << " alpha=" << scenario.alpha
              << " horizon=" << scenario.horizon;
  if (scenario.window.has_value()) {
    description << " window=" << *scenario.window;
  }
  scenario.description = description.str();
  return scenario;
}

std::vector<Value> SampleStream(const StochasticProcess& process, Time length,
                                Rng& rng) {
  StreamHistory history;
  std::vector<Value> values;
  values.reserve(static_cast<std::size_t>(length));
  for (Time t = 0; t < length; ++t) {
    Value v = process.SampleNext(history, rng);
    history.Append(v);
    values.push_back(v);
  }
  return values;
}

std::pair<std::vector<Value>, std::vector<Value>> SampleRealization(
    const Scenario& scenario, Rng& rng) {
  return {SampleStream(*scenario.r_process, scenario.length, rng),
          SampleStream(*scenario.s_process, scenario.length, rng)};
}

}  // namespace testing
}  // namespace sjoin
