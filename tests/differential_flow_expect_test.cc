// Differential suite for the optimized FlowExpectPolicy (graph templates,
// retained prediction buffers, workspace-reusing solver, dominance
// prefilter) against the frozen rebuild-everything oracle.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialFlowExpectTest, OptimizedMatchesNaiveOracle) {
  const DifferentialSuite* suite = FindDifferentialSuite("flow_expect");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
