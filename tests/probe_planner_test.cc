#include "sjoin/engine/probe_planner.h"

#include <gtest/gtest.h>

#include <vector>

#include "sjoin/engine/stream_engine.h"

namespace sjoin {
namespace {

// Hub-and-spoke topology: stream 0 joins 1, 2 and 3.
StreamTopology Star4() {
  return StreamTopology(4, {{0, 1}, {0, 2}, {0, 3}});
}

TEST(ProbePlannerTest, InitialPlanFollowsTopologyOrder) {
  StreamTopology topology = Star4();
  ProbePlanner planner;
  planner.BeginRun(topology, /*memo_across_steps=*/true);
  EXPECT_EQ(planner.PlanFor(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(planner.PlanFor(1), (std::vector<int>{0}));
  EXPECT_EQ(planner.PlanFor(2), (std::vector<int>{0}));
  EXPECT_EQ(planner.PlanFor(3), (std::vector<int>{0}));
}

TEST(ProbePlannerTest, ReplanOrdersPartnersBySelectivity) {
  StreamTopology topology = Star4();
  ProbePlanner planner({.replan_interval = 4, .decay = 0.5});
  planner.BeginRun(topology, true);

  // Partner 3 matches every probe, partner 2 half, partner 1 never.
  for (Time now = 0; now < 4; ++now) {
    planner.BeginStep(now);
    planner.ObserveProbe(0, 1, 0, ProbeKind::kEvaluated);
    planner.ObserveProbe(0, 2, now % 2, ProbeKind::kEvaluated);
    planner.ObserveProbe(0, 3, 2, ProbeKind::kEvaluated);
  }
  planner.BeginStep(4);  // Checkpoint: window folds, plans re-sort.
  EXPECT_EQ(planner.PlanFor(0), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(planner.stats().checkpoints, 1);
  EXPECT_EQ(planner.stats().replans, 1);
}

TEST(ProbePlannerTest, TiedSelectivitiesBreakOnPartnerIndex) {
  StreamTopology topology = Star4();
  ProbePlanner planner({.replan_interval = 2, .decay = 0.5});
  planner.BeginRun(topology, true);
  planner.BeginStep(0);
  // All partners equally selective: the order must stay 1, 2, 3, and an
  // order-preserving checkpoint must not count as a replan.
  for (int p : {1, 2, 3}) planner.ObserveProbe(0, p, 1, ProbeKind::kEvaluated);
  planner.BeginStep(2);
  EXPECT_EQ(planner.PlanFor(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(planner.stats().checkpoints, 1);
  EXPECT_EQ(planner.stats().replans, 0);
}

TEST(ProbePlannerTest, MemoServesRepeatsUntilInvalidated) {
  StreamTopology topology = Star4();
  ProbePlanner planner;
  planner.BeginRun(topology, /*memo_across_steps=*/true);
  planner.BeginStep(0);

  std::int64_t count = -1;
  EXPECT_FALSE(planner.LookupCount(1, 42, &count));
  planner.StoreCount(1, 42, 3);
  ASSERT_TRUE(planner.LookupCount(1, 42, &count));
  EXPECT_EQ(count, 3);

  // Entries survive step boundaries when memoizing across steps...
  planner.BeginStep(1);
  EXPECT_TRUE(planner.LookupCount(1, 42, &count));
  // ...but a cache change on that (stream, value) invalidates.
  planner.OnCacheChange(1, 42);
  EXPECT_FALSE(planner.LookupCount(1, 42, &count));
  // Other values and partners are untouched.
  planner.StoreCount(1, 7, 1);
  planner.StoreCount(2, 42, 2);
  planner.OnCacheChange(1, 42);
  EXPECT_TRUE(planner.LookupCount(1, 7, &count));
  EXPECT_TRUE(planner.LookupCount(2, 42, &count));
}

TEST(ProbePlannerTest, WindowedRunsDropMemoEveryStep) {
  StreamTopology topology = Star4();
  ProbePlanner planner;
  planner.BeginRun(topology, /*memo_across_steps=*/false);
  planner.BeginStep(0);
  planner.StoreCount(1, 42, 3);
  std::int64_t count = 0;
  EXPECT_TRUE(planner.LookupCount(1, 42, &count));
  planner.BeginStep(1);
  EXPECT_FALSE(planner.LookupCount(1, 42, &count));
}

TEST(ProbePlannerTest, StatsPartitionProbesByKind) {
  StreamTopology topology = Star4();
  ProbePlanner planner;
  planner.BeginRun(topology, true);
  planner.BeginStep(0);
  planner.ObserveProbe(0, 1, 0, ProbeKind::kSkipped);
  planner.ObserveProbe(0, 2, 1, ProbeKind::kMemoHit);
  planner.ObserveProbe(0, 3, 2, ProbeKind::kEvaluated);
  planner.ObserveProbe(1, 0, 1, ProbeKind::kEvaluated);

  const ProbePlanStats& stats = planner.stats();
  EXPECT_EQ(stats.probes, 4);
  EXPECT_EQ(stats.skipped, 1);
  EXPECT_EQ(stats.cache_hits, 1);
  EXPECT_EQ(stats.evaluated, 2);
  EXPECT_EQ(stats.probes, stats.skipped + stats.cache_hits + stats.evaluated);
  EXPECT_EQ(planner.step_stats().probes, 4);

  planner.BeginStep(1);
  EXPECT_EQ(planner.step_stats().probes, 0);  // Per-step stats reset.
  EXPECT_EQ(planner.stats().probes, 4);       // Cumulative stats persist.
}

TEST(ProbePlannerTest, BeginRunResetsEverything) {
  StreamTopology topology = Star4();
  ProbePlanner planner({.replan_interval = 2, .decay = 0.5});
  planner.BeginRun(topology, true);
  planner.BeginStep(0);
  planner.ObserveProbe(0, 3, 5, ProbeKind::kEvaluated);
  planner.StoreCount(3, 9, 5);
  planner.BeginStep(2);

  planner.BeginRun(topology, true);
  std::int64_t count = 0;
  EXPECT_FALSE(planner.LookupCount(3, 9, &count));
  EXPECT_EQ(planner.stats().probes, 0);
  EXPECT_EQ(planner.PlanFor(0), (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sjoin
