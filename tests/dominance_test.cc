#include "sjoin/core/dominance.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace sjoin {
namespace {

TEST(CompareEcbTest, Equal) {
  TabulatedEcb a({0.1, 0.2, 0.3});
  TabulatedEcb b({0.1, 0.2, 0.3});
  EXPECT_EQ(CompareEcb(a, b, 3), Dominance::kEqual);
  EXPECT_TRUE(MeansDominates(CompareEcb(a, b, 3)));
}

TEST(CompareEcbTest, StrictDominance) {
  TabulatedEcb a({0.2, 0.4, 0.6});
  TabulatedEcb b({0.1, 0.2, 0.3});
  EXPECT_EQ(CompareEcb(a, b, 3), Dominance::kStrictlyDominates);
  EXPECT_EQ(CompareEcb(b, a, 3), Dominance::kStrictlyDominatedBy);
}

TEST(CompareEcbTest, WeakDominance) {
  TabulatedEcb a({0.1, 0.4, 0.6});
  TabulatedEcb b({0.1, 0.2, 0.3});
  EXPECT_EQ(CompareEcb(a, b, 3), Dominance::kDominates);
  EXPECT_EQ(CompareEcb(b, a, 3), Dominance::kDominatedBy);
}

TEST(CompareEcbTest, CrossingCurvesAreIncomparable) {
  // The x vs z dilemma of Figure 2: z starts higher, x ends higher.
  TabulatedEcb x({0.1, 0.3, 0.9});
  TabulatedEcb z({0.5, 0.6, 0.6});
  EXPECT_EQ(CompareEcb(x, z, 3), Dominance::kIncomparable);
}

TEST(CompareEcbTest, HorizonMatters) {
  TabulatedEcb x({0.1, 0.3, 0.9});
  TabulatedEcb z({0.5, 0.6, 0.6});
  // Looking only one step ahead, z dominates.
  EXPECT_EQ(CompareEcb(x, z, 1), Dominance::kStrictlyDominatedBy);
}

// Section 4.2's example: w dominates all; x and z incomparable; y dominated
// by all.
class WxyzTest : public ::testing::Test {
 protected:
  WxyzTest()
      : w_({0.9, 1.2, 1.5}),
        x_({0.1, 0.3, 0.9}),
        y_({0.05, 0.1, 0.15}),
        z_({0.5, 0.6, 0.6}) {}
  TabulatedEcb w_, x_, y_, z_;
};

TEST_F(WxyzTest, PairwiseRelations) {
  EXPECT_TRUE(MeansDominates(CompareEcb(w_, x_, 3)));
  EXPECT_TRUE(MeansDominates(CompareEcb(w_, y_, 3)));
  EXPECT_TRUE(MeansDominates(CompareEcb(w_, z_, 3)));
  EXPECT_TRUE(MeansDominates(CompareEcb(x_, y_, 3)));
  EXPECT_TRUE(MeansDominates(CompareEcb(z_, y_, 3)));
  EXPECT_EQ(CompareEcb(x_, z_, 3), Dominance::kIncomparable);
}

TEST_F(WxyzTest, DiscardThreeSelectsXYZ) {
  std::vector<const EcbFn*> candidates = {&w_, &x_, &y_, &z_};
  auto discard = FindDominatedSubset(candidates, 3, 3);
  // Optimal to discard {x, y, z} (indices 1, 2, 3).
  ASSERT_EQ(discard.size(), 3u);
  EXPECT_TRUE(std::find(discard.begin(), discard.end(), 0u) ==
              discard.end());
}

TEST_F(WxyzTest, DiscardTwoOnlyFindsY) {
  std::vector<const EcbFn*> candidates = {&w_, &x_, &y_, &z_};
  auto discard = FindDominatedSubset(candidates, 2, 3);
  // y can safely go; x and z are mutually incomparable so neither fits
  // without the other ("the choice between x and z is unclear").
  ASSERT_EQ(discard.size(), 1u);
  EXPECT_EQ(discard[0], 2u);
}

TEST(FindDominatedSubsetTest, TotallyOrderedChain) {
  TabulatedEcb a({0.1});
  TabulatedEcb b({0.2});
  TabulatedEcb c({0.3});
  TabulatedEcb d({0.4});
  std::vector<const EcbFn*> candidates = {&c, &a, &d, &b};
  auto discard = FindDominatedSubset(candidates, 2, 1);
  // The two smallest (a at index 1 and b at index 3) are discardable.
  ASSERT_EQ(discard.size(), 2u);
  EXPECT_TRUE(std::find(discard.begin(), discard.end(), 1u) !=
              discard.end());
  EXPECT_TRUE(std::find(discard.begin(), discard.end(), 3u) !=
              discard.end());
}

TEST(FindDominatedSubsetTest, ZeroBudgetReturnsEmpty) {
  TabulatedEcb a({0.1});
  std::vector<const EcbFn*> candidates = {&a};
  EXPECT_TRUE(FindDominatedSubset(candidates, 0, 1).empty());
}

TEST(FindDominatedSubsetTest, ValidityInvariant) {
  // Whatever the subset, every outsider must dominate every member.
  TabulatedEcb a({0.1, 0.5});
  TabulatedEcb b({0.3, 0.4});
  TabulatedEcb c({0.35, 0.9});
  TabulatedEcb d({0.05, 0.1});
  std::vector<const EcbFn*> candidates = {&a, &b, &c, &d};
  auto discard = FindDominatedSubset(candidates, 2, 2);
  for (std::size_t member : discard) {
    for (std::size_t outsider = 0; outsider < candidates.size();
         ++outsider) {
      if (std::find(discard.begin(), discard.end(), outsider) !=
          discard.end()) {
        continue;
      }
      EXPECT_TRUE(MeansDominates(CompareEcb(*candidates[outsider],
                                            *candidates[member], 2)))
          << outsider << " must dominate " << member;
    }
  }
}

}  // namespace
}  // namespace sjoin
