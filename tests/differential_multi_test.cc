// Differential suite for the runtime probe planner (DESIGN.md §2f):
// planned multi-way runs — re-planned probe order, empty-partner skips,
// the (partner, value) probe-result cache, and the policies' score memos —
// against the naive fixed-order engine on 3-way chain and 5-way star
// topologies, bit for bit on full per-step traces, plus rerun determinism
// of the planner statistics. (The SJOIN_DIFF_MULTI env hook additionally
// reruns each trial through the MultiJoinSimulator façade and the sharded
// engine's serial fallback; CI's TSan job runs with it set.)

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialMultiTest, PlannedMultiWayRunsMatchNaiveBitForBit) {
  const DifferentialSuite* suite = FindDifferentialSuite("multi_planner");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
