// The session lifecycle carved out of the engines: Open + Advance + Close
// must reproduce Run bit for bit no matter how a stream is sliced into
// batches, sessions must be portable across engines (serial) and
// interleavable through one engine, and the sharded engine's session
// path — serial fallback included — must match its batch Run.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/sharded_stream_engine.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

std::vector<Value> SampleValues(Time len, Value domain, Rng& rng) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    out.push_back(rng.UniformInt(0, domain - 1));
  }
  return out;
}

/// Deep per-step trace: everything the observer protocol exposes that is
/// deterministic, cache content included, so a mismatch anywhere in the
/// step loop shows up as a trace difference.
struct StepTrace {
  Time now = 0;
  std::int64_t produced = 0;
  bool counted = false;
  std::size_t num_candidates = 0;
  std::vector<TupleId> cache_ids;
  std::vector<TupleId> retained;

  friend bool operator==(const StepTrace&, const StepTrace&) = default;
};

class TraceObserver final : public StepObserver {
 public:
  void OnRunBegin(const EngineRunView& run) override {
    begin_length_ = run.length;
  }
  void OnStep(const EngineStepView& step) override {
    StepTrace trace;
    trace.now = step.now;
    trace.produced = step.produced;
    trace.counted = step.counted;
    trace.num_candidates = step.num_candidates;
    for (const StreamTuple& tuple : *step.cache) {
      trace.cache_ids.push_back(tuple.id);
    }
    trace.retained = *step.retained;
    steps_.push_back(std::move(trace));
  }
  void OnRunEnd(const EngineRunView& run) override {
    end_length_ = run.length;
  }

  const std::vector<StepTrace>& steps() const { return steps_; }
  Time begin_length() const { return begin_length_; }
  Time end_length() const { return end_length_; }

 private:
  std::vector<StepTrace> steps_;
  Time begin_length_ = -2;
  Time end_length_ = -2;
};

/// Slices `streams` into consecutive Advance batches of the given sizes
/// (the last batch takes whatever remains; zero-length batches allowed).
void AdvanceInSlices(StreamEngine& engine, SessionState& session,
                     const std::vector<std::vector<Value>>& streams,
                     const std::vector<Time>& slice_sizes) {
  const Time len = static_cast<Time>(streams[0].size());
  Time offset = 0;
  std::size_t slice = 0;
  while (offset < len) {
    Time take = slice < slice_sizes.size() ? slice_sizes[slice]
                                           : len - offset;
    take = std::min(take, len - offset);
    std::vector<std::vector<Value>> chunk;
    std::vector<const std::vector<Value>*> chunk_ptrs;
    for (const std::vector<Value>& stream : streams) {
      chunk.emplace_back(
          stream.begin() + static_cast<std::ptrdiff_t>(offset),
          stream.begin() + static_cast<std::ptrdiff_t>(offset + take));
    }
    for (const std::vector<Value>& c : chunk) chunk_ptrs.push_back(&c);
    engine.Advance(session, chunk_ptrs);
    offset += take;
    ++slice;
  }
}

TEST(SessionStateTest, AdvanceSlicingMatchesBatchRun) {
  Rng rng(21);
  // Capacities straddle kValueIndexMinCapacity; the windowed variant
  // keeps the linear probe.
  for (std::size_t capacity : {std::size_t{4}, std::size_t{48}}) {
    for (int windowed = 0; windowed < 2; ++windowed) {
      std::vector<std::vector<Value>> streams{SampleValues(257, 9, rng),
                                              SampleValues(257, 9, rng)};
      StreamEngine::Options options;
      options.capacity = capacity;
      options.warmup = 30;
      if (windowed != 0) options.window = 11;

      ProbPolicy prob;
      BinaryPolicyAdapter batch_adapter(&prob);
      StreamEngine batch_engine(StreamTopology::Binary(), options);
      TraceObserver batch_trace;
      EngineRunResult batch = batch_engine.Run(
          {&streams[0], &streams[1]}, batch_adapter, {&batch_trace});
      EXPECT_EQ(batch_trace.begin_length(), 257);
      EXPECT_EQ(batch_trace.end_length(), 257);

      for (const std::vector<Time>& slices :
           {std::vector<Time>{1}, std::vector<Time>{7, 0, 64},
            std::vector<Time>{256}, std::vector<Time>{257}}) {
        ProbPolicy session_prob;
        BinaryPolicyAdapter adapter(&session_prob);
        StreamEngine engine(StreamTopology::Binary(), options);
        TraceObserver trace;
        SessionState session;
        engine.Open(session, options, adapter, {&trace});
        EXPECT_EQ(trace.begin_length(), -1);  // Length unknown up front.
        AdvanceInSlices(engine, session, streams, slices);
        EXPECT_EQ(engine.Drain(session).total_results,
                  batch.total_results);
        EngineRunResult result = engine.Close(session);
        EXPECT_EQ(result.total_results, batch.total_results);
        EXPECT_EQ(result.counted_results, batch.counted_results);
        EXPECT_EQ(trace.end_length(), 257);
        EXPECT_EQ(trace.steps(), batch_trace.steps());
      }
    }
  }
}

TEST(SessionStateTest, SessionIsPortableAcrossEngines) {
  Rng rng(5);
  std::vector<std::vector<Value>> streams{SampleValues(200, 8, rng),
                                          SampleValues(200, 8, rng)};
  StreamEngine::Options options{.capacity = 40, .warmup = 10};

  ProbPolicy batch_prob;
  BinaryPolicyAdapter batch_adapter(&batch_prob);
  EngineRunResult batch = StreamEngine(StreamTopology::Binary(), options)
                              .Run({&streams[0], &streams[1]},
                                   batch_adapter);

  // First half on engine a, second half on engine b: the session carries
  // all per-run state, the engines only execute.
  StreamEngine a(StreamTopology::Binary(), options);
  StreamEngine b(StreamTopology::Binary(), options);
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);
  SessionState session;
  a.Open(session, options, adapter);
  std::vector<std::vector<Value>> front, back;
  for (const std::vector<Value>& stream : streams) {
    front.emplace_back(stream.begin(), stream.begin() + 100);
    back.emplace_back(stream.begin() + 100, stream.end());
  }
  a.Advance(session, {&front[0], &front[1]});
  b.Advance(session, {&back[0], &back[1]});
  EngineRunResult result = b.Close(session);
  EXPECT_EQ(result.total_results, batch.total_results);
  EXPECT_EQ(result.counted_results, batch.counted_results);
}

TEST(SessionStateTest, InterleavedSessionsShareOneEngine) {
  Rng rng(77);
  // Three sessions with different capacities/policies advanced
  // round-robin in uneven chunks through a single engine.
  constexpr int kSessions = 3;
  std::vector<std::vector<std::vector<Value>>> streams;
  std::vector<StreamEngine::Options> options;
  for (int i = 0; i < kSessions; ++i) {
    streams.push_back({SampleValues(180, 7, rng), SampleValues(180, 7, rng)});
    options.push_back({.capacity = std::size_t{4} * (i + 1) * (i + 1),
                       .warmup = Time{5} * i});
  }

  std::vector<EngineRunResult> solo;
  for (int i = 0; i < kSessions; ++i) {
    RandomPolicy policy(100 + i, std::nullopt);
    BinaryPolicyAdapter adapter(&policy);
    solo.push_back(StreamEngine(StreamTopology::Binary(), options[i])
                       .Run({&streams[i][0], &streams[i][1]}, adapter));
  }

  StreamEngine engine(StreamTopology::Binary(), {});
  std::vector<RandomPolicy> policies;
  policies.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    policies.emplace_back(100 + i, std::nullopt);
  }
  std::vector<BinaryPolicyAdapter> adapters;
  adapters.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) adapters.emplace_back(&policies[i]);
  std::vector<SessionState> sessions(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    engine.Open(sessions[i], options[i], adapters[i]);
  }
  // Uneven interleave: session i advances in chunks of 13 + 5 i.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int i = 0; i < kSessions; ++i) {
      const Time done = sessions[i].now;
      const Time len = static_cast<Time>(streams[i][0].size());
      if (done >= len) continue;
      const Time take = std::min<Time>(13 + 5 * i, len - done);
      std::vector<std::vector<Value>> chunk;
      for (const std::vector<Value>& stream : streams[i]) {
        chunk.emplace_back(
            stream.begin() + static_cast<std::ptrdiff_t>(done),
            stream.begin() + static_cast<std::ptrdiff_t>(done + take));
      }
      engine.Advance(sessions[i], {&chunk[0], &chunk[1]});
      progressed = true;
    }
  }
  for (int i = 0; i < kSessions; ++i) {
    EngineRunResult result = engine.Close(sessions[i]);
    EXPECT_EQ(result.total_results, solo[i].total_results) << i;
    EXPECT_EQ(result.counted_results, solo[i].counted_results) << i;
  }
}

TEST(SessionStateTest, ShardedSessionMatchesShardedRun) {
  Rng rng(41);
  std::vector<std::vector<Value>> streams{SampleValues(300, 10, rng),
                                          SampleValues(300, 10, rng)};
  ShardedStreamEngine::Options options;
  options.capacity = 48;
  options.warmup = 12;
  options.shards = 4;
  options.threads = 2;

  ProbPolicy batch_prob;
  BinaryPolicyAdapter batch_adapter(&batch_prob);
  ShardedStreamEngine batch_engine(StreamTopology::Binary(), options);
  EngineRunResult batch =
      batch_engine.Run({&streams[0], &streams[1]}, batch_adapter);
  EXPECT_EQ(batch_engine.fallback_reason(), nullptr);

  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);
  ShardedStreamEngine engine(StreamTopology::Binary(), options);
  SessionState session;
  engine.Open(session, adapter);
  ASSERT_NE(session.sharded_owner, nullptr);
  std::vector<std::vector<Value>> front, back;
  for (const std::vector<Value>& stream : streams) {
    front.emplace_back(stream.begin(), stream.begin() + 101);
    back.emplace_back(stream.begin() + 101, stream.end());
  }
  engine.Advance(session, {&front[0], &front[1]});
  engine.Advance(session, {&back[0], &back[1]});
  EngineRunResult result = engine.Close(session);
  EXPECT_EQ(result.total_results, batch.total_results);
  EXPECT_EQ(result.counted_results, batch.counted_results);

  // Closed means the engine-resident sharded state is free for reuse.
  ProbPolicy again;
  BinaryPolicyAdapter again_adapter(&again);
  SessionState second;
  engine.Open(second, again_adapter);
  engine.Advance(second, {&streams[0], &streams[1]});
  EngineRunResult rerun = engine.Close(second);
  EXPECT_EQ(rerun.total_results, batch.total_results);
}

TEST(SessionStateTest, ShardedEngineSerialFallbackSessions) {
  Rng rng(61);
  std::vector<std::vector<Value>> streams{SampleValues(150, 6, rng),
                                          SampleValues(150, 6, rng)};
  ShardedStreamEngine::Options options;
  options.capacity = 12;
  options.shards = 4;

  // RandomPolicy keeps per-tuple randomness, so it has no shard scoring:
  // Open must fall back to a portable serial session and say why.
  RandomPolicy batch_policy(9, std::nullopt);
  BinaryPolicyAdapter batch_adapter(&batch_policy);
  ShardedStreamEngine batch_engine(StreamTopology::Binary(), options);
  EngineRunResult batch =
      batch_engine.Run({&streams[0], &streams[1]}, batch_adapter);

  RandomPolicy policy(9, std::nullopt);
  BinaryPolicyAdapter adapter(&policy);
  ShardedStreamEngine engine(StreamTopology::Binary(), options);
  SessionState session;
  engine.Open(session, adapter);
  ASSERT_NE(engine.fallback_reason(), nullptr);
  EXPECT_EQ(session.sharded_owner, nullptr);
  engine.Advance(session, {&streams[0], &streams[1]});
  EngineRunResult result = engine.Close(session);
  EXPECT_EQ(result.total_results, batch.total_results);
  EXPECT_EQ(result.counted_results, batch.counted_results);
}

}  // namespace
}  // namespace sjoin
