#include "sjoin/policies/opt_offline_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

// Exhaustive search over all replacement-decision sequences: the true
// MAX-subset optimum for tiny instances.
struct BruteTuple {
  StreamSide side;
  Value value;
};

std::int64_t BruteForceBest(const std::vector<Value>& r,
                            const std::vector<Value>& s,
                            std::size_t capacity, Time t,
                            std::vector<BruteTuple> cache) {
  Time len = static_cast<Time>(r.size());
  if (t >= len) return 0;
  BruteTuple r_tuple{StreamSide::kR, r[static_cast<std::size_t>(t)]};
  BruteTuple s_tuple{StreamSide::kS, s[static_cast<std::size_t>(t)]};
  // Joins against the cache selected at the previous step.
  std::int64_t produced = 0;
  for (const BruteTuple& c : cache) {
    if (c.side == StreamSide::kS && c.value == r_tuple.value) ++produced;
    if (c.side == StreamSide::kR && c.value == s_tuple.value) ++produced;
  }
  // Choose any subset of (cache + arrivals) of size <= capacity. Enumerate
  // via bitmask over candidates.
  std::vector<BruteTuple> candidates = cache;
  candidates.push_back(r_tuple);
  candidates.push_back(s_tuple);
  std::int64_t best = 0;
  int n = static_cast<int>(candidates.size());
  for (int mask = 0; mask < (1 << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(
            static_cast<unsigned>(mask))) > capacity) {
      continue;
    }
    std::vector<BruteTuple> next;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) next.push_back(candidates[static_cast<std::size_t>(i)]);
    }
    best = std::max(best, BruteForceBest(r, s, capacity, t + 1,
                                         std::move(next)));
  }
  return produced + best;
}

TEST(OptOfflineTest, MatchesBruteForceOnTinyInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 15; ++trial) {
    Time len = rng.UniformInt(3, 6);
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 3));
      s.push_back(rng.UniformInt(0, 3));
    }
    std::size_t capacity = static_cast<std::size_t>(rng.UniformInt(1, 2));

    OptOfflinePolicy opt(r, s, capacity);
    JoinSimulator sim({.capacity = capacity, .warmup = 0});
    auto result = sim.Run(r, s, opt);

    std::int64_t brute = BruteForceBest(r, s, capacity, 0, {});
    EXPECT_EQ(result.total_results, brute)
        << "trial " << trial << " len " << len << " cap " << capacity;
    EXPECT_EQ(opt.optimal_benefit(), brute);
  }
}

TEST(OptOfflineTest, SimulatorAgreesWithFlowCost) {
  Rng rng(88);
  for (int trial = 0; trial < 10; ++trial) {
    Time len = 40;
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 9));
      s.push_back(rng.UniformInt(0, 9));
    }
    OptOfflinePolicy opt(r, s, 3);
    JoinSimulator sim({.capacity = 3, .warmup = 0});
    auto result = sim.Run(r, s, opt);
    EXPECT_EQ(result.total_results, opt.optimal_benefit());
  }
}

TEST(OptOfflineTest, UpperBoundsOnlinePolicies) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Time len = 60;
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 7));
      s.push_back(rng.UniformInt(0, 7));
    }
    std::size_t capacity = 4;
    JoinSimulator sim({.capacity = capacity, .warmup = 0});

    OptOfflinePolicy opt(r, s, capacity);
    auto opt_result = sim.Run(r, s, opt);

    RandomPolicy rand(trial);
    auto rand_result = sim.Run(r, s, rand);
    EXPECT_GE(opt_result.total_results, rand_result.total_results);

    ProbPolicy prob;
    auto prob_result = sim.Run(r, s, prob);
    EXPECT_GE(opt_result.total_results, prob_result.total_results);
  }
}

TEST(OptOfflineTest, WindowedMatchesWindowedBruteForce) {
  // With a window, matches beyond the window must not be scheduled.
  std::vector<Value> r = {1, 9, 9, 9};
  std::vector<Value> s = {8, 8, 8, 1};
  // R(1) at t=0 joins S(1) at t=3 only if window >= 3.
  {
    OptOfflinePolicy opt(r, s, 1, /*window=*/Time{3});
    JoinSimulator sim({.capacity = 1, .warmup = 0, .window = Time{3}});
    EXPECT_EQ(sim.Run(r, s, opt).total_results, 1);
  }
  {
    OptOfflinePolicy opt(r, s, 1, /*window=*/Time{2});
    JoinSimulator sim({.capacity = 1, .warmup = 0, .window = Time{2}});
    EXPECT_EQ(sim.Run(r, s, opt).total_results, 0);
  }
}

TEST(OptOfflineTest, EmptyAndDegenerateInputs) {
  OptOfflinePolicy opt({}, {}, 2);
  EXPECT_EQ(opt.optimal_benefit(), 0);
  // No matching values at all.
  std::vector<Value> r = {1, 2, 3};
  std::vector<Value> s = {4, 5, 6};
  OptOfflinePolicy opt2(r, s, 2);
  EXPECT_EQ(opt2.optimal_benefit(), 0);
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  EXPECT_EQ(sim.Run(r, s, opt2).total_results, 0);
}

}  // namespace
}  // namespace sjoin
