#include "sjoin/core/ecb.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace {

TEST(TabulatedEcbTest, ClampsBeyondHorizon) {
  TabulatedEcb ecb({0.5, 1.0, 1.2});
  EXPECT_DOUBLE_EQ(ecb.At(1), 0.5);
  EXPECT_DOUBLE_EQ(ecb.At(3), 1.2);
  EXPECT_DOUBLE_EQ(ecb.At(100), 1.2);
}

TEST(EcbTest, StationaryJoiningIsLinear) {
  // Section 5.2: B_x(dt) = p(v) * dt.
  StationaryProcess partner(DiscreteDistribution::BoundedUniform(0, 4));
  StreamHistory history({1});
  auto ecb = MakeJoiningEcb(partner, history, 0, 2, 10);
  for (Time dt = 1; dt <= 10; ++dt) {
    EXPECT_NEAR(ecb.At(dt), 0.2 * static_cast<double>(dt), 1e-12);
  }
}

TEST(EcbTest, StationaryCachingIsGeometric) {
  // Section 5.2: B_x(dt) = 1 - (1 - p(v))^dt.
  StationaryProcess reference(DiscreteDistribution::BoundedUniform(0, 4));
  StreamHistory history({1});
  auto ecb = MakeCachingEcb(reference, history, 0, 2, 10);
  for (Time dt = 1; dt <= 10; ++dt) {
    EXPECT_NEAR(ecb.At(dt),
                1.0 - std::pow(0.8, static_cast<double>(dt)), 1e-12);
  }
}

TEST(EcbTest, OfflineCachingIsSingleStep) {
  // Section 5.1: a single step from 0 to 1 at dt = t_x - t0.
  OfflineProcess reference({5, 6, 7, 5, 8});
  StreamHistory history({5});  // Current time t0 = 0.
  auto ecb = MakeCachingEcb(reference, history, 0, 5, 4);
  EXPECT_DOUBLE_EQ(ecb.At(1), 0.0);  // t=1 -> 6.
  EXPECT_DOUBLE_EQ(ecb.At(2), 0.0);  // t=2 -> 7.
  EXPECT_DOUBLE_EQ(ecb.At(3), 1.0);  // t=3 -> 5: referenced.
  EXPECT_DOUBLE_EQ(ecb.At(4), 1.0);
}

TEST(EcbTest, OfflineJoiningIsMultiStep) {
  // Section 5.1: one unit step per future occurrence.
  OfflineProcess partner({9, 4, 9, 4, 4});
  StreamHistory history({9});
  auto ecb = MakeJoiningEcb(partner, history, 0, 4, 4);
  EXPECT_DOUBLE_EQ(ecb.At(1), 1.0);
  EXPECT_DOUBLE_EQ(ecb.At(2), 1.0);
  EXPECT_DOUBLE_EQ(ecb.At(3), 2.0);
  EXPECT_DOUBLE_EQ(ecb.At(4), 3.0);
}

// Section 5.3 / Appendix O: joining ECBs under linear trend with bounded
// uniform noise, trend f(t) = t, R noise [-wR, wR], S noise [-wS, wS].
class FloorEcbTest : public ::testing::Test {
 protected:
  static constexpr Value kWr = 3;
  static constexpr Value kWs = 5;
  static constexpr Time kT0 = 100;
  static constexpr Time kHorizon = 40;

  FloorEcbTest()
      : r_process_(1.0, 0.0, DiscreteDistribution::BoundedUniform(-kWr, kWr)),
        s_process_(1.0, 0.0,
                   DiscreteDistribution::BoundedUniform(-kWs, kWs)) {}

  // ECB of an R tuple with value v (joins future S arrivals).
  TabulatedEcb REcb(Value v) {
    StreamHistory empty;
    return MakeJoiningEcb(s_process_, empty, kT0, v, kHorizon);
  }
  // ECB of an S tuple with value v (joins future R arrivals).
  TabulatedEcb SEcb(Value v) {
    StreamHistory empty;
    return MakeJoiningEcb(r_process_, empty, kT0, v, kHorizon);
  }

  LinearTrendProcess r_process_;
  LinearTrendProcess s_process_;
};

TEST_F(FloorEcbTest, CategoryR1HasZeroEcb) {
  // v <= t0 - wS: already missed the S window.
  auto ecb = REcb(kT0 - kWs);
  EXPECT_DOUBLE_EQ(ecb.At(kHorizon), 0.0);
}

TEST_F(FloorEcbTest, CategoryR2MatchesClosedForm) {
  // v in (t0 - wS, t0 + wR]: B(dt) = dt / (2wS+1) until dt = v - (t0-wS),
  // flat afterwards.
  Value v = kT0 + 1;
  auto ecb = REcb(v);
  double rate = 1.0 / (2.0 * kWs + 1.0);
  Time cutoff = v - (kT0 - kWs);
  for (Time dt = 1; dt <= kHorizon; ++dt) {
    double expected = rate * static_cast<double>(std::min(dt, cutoff));
    EXPECT_NEAR(ecb.At(dt), expected, 1e-12) << "dt=" << dt;
  }
}

TEST_F(FloorEcbTest, CategoryS2MatchesClosedForm) {
  // v in (t0 - wR, t0 + wR + 1]: B(dt) = dt / (2wR+1) until the R window
  // passes, i.e. cutoff v - (t0 - wR).
  Value v = kT0;
  auto ecb = SEcb(v);
  double rate = 1.0 / (2.0 * kWr + 1.0);
  Time cutoff = v - (kT0 - kWr);
  for (Time dt = 1; dt <= kHorizon; ++dt) {
    double expected = rate * static_cast<double>(std::min(dt, cutoff));
    EXPECT_NEAR(ecb.At(dt), expected, 1e-12) << "dt=" << dt;
  }
}

TEST_F(FloorEcbTest, CategoryS3StartsDelayed) {
  // v in (t0 + wR + 1, t0 + wS]: zero until the R window reaches v, then
  // grows at rate 1/(2wR+1), then flattens.
  Value v = kT0 + kWr + 3;
  auto ecb = SEcb(v);
  double rate = 1.0 / (2.0 * kWr + 1.0);
  for (Time dt = 1; dt <= kHorizon; ++dt) {
    double expected;
    Time start = v - (kT0 + kWr);  // First dt with positive probability.
    Time end = v - (kT0 - kWr);    // Last dt with positive probability.
    if (dt < start) {
      expected = 0.0;
    } else if (dt <= end) {
      expected = rate * static_cast<double>(dt - start + 1);
    } else {
      expected = rate * static_cast<double>(end - start + 1);
    }
    EXPECT_NEAR(ecb.At(dt), expected, 1e-12) << "dt=" << dt;
  }
}

TEST(WindowedEcbTest, ExpiredTupleHasZeroEcb) {
  TabulatedEcb base({0.5, 1.0, 1.5, 2.0});
  // Arrived at 0, window 2, now 5: expired.
  auto windowed = MakeWindowedEcb(base, 0, 5, 2, 4);
  for (Time dt = 1; dt <= 4; ++dt) EXPECT_DOUBLE_EQ(windowed.At(dt), 0.0);
}

TEST(WindowedEcbTest, CapsAtRemainingLife) {
  TabulatedEcb base({0.5, 1.0, 1.5, 2.0});
  // Arrived at 0, window 2, now 0: remaining life 2.
  auto windowed = MakeWindowedEcb(base, 0, 0, 2, 4);
  EXPECT_DOUBLE_EQ(windowed.At(1), 0.5);
  EXPECT_DOUBLE_EQ(windowed.At(2), 1.0);
  EXPECT_DOUBLE_EQ(windowed.At(3), 1.0);  // min(B(3), B(2)).
  EXPECT_DOUBLE_EQ(windowed.At(4), 1.0);
}

}  // namespace
}  // namespace sjoin
