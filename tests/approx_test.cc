#include <gtest/gtest.h>

#include <cmath>

#include "sjoin/approx/bicubic_surface.h"
#include "sjoin/approx/cubic_curve.h"

namespace sjoin {
namespace {

TEST(CubicCurveTest, ExactAtControlPoints) {
  CubicCurve curve(0.0, 1.0, {1.0, 4.0, 9.0, 16.0, 25.0});
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(curve.At(static_cast<double>(i)),
                static_cast<double>((i + 1) * (i + 1)), 1e-12);
  }
}

TEST(CubicCurveTest, ReproducesLinearFunctionsExactly) {
  CubicCurve curve(-2.0, 0.5, {1.0, 2.0, 3.0, 4.0, 5.0, 6.0});
  for (double x = -2.0; x <= 0.5; x += 0.1) {
    EXPECT_NEAR(curve.At(x), 2.0 * (x + 2.0) + 1.0, 1e-9);
  }
}

TEST(CubicCurveTest, ClampsOutsideDomain) {
  CubicCurve curve(0.0, 1.0, {3.0, 5.0});
  EXPECT_DOUBLE_EQ(curve.At(-10.0), 3.0);
  EXPECT_DOUBLE_EQ(curve.At(10.0), 5.0);
}

TEST(CubicCurveTest, SmoothApproximationOfSine) {
  std::vector<double> control;
  for (int i = 0; i <= 20; ++i) {
    control.push_back(std::sin(0.3 * static_cast<double>(i)));
  }
  CubicCurve curve(0.0, 0.3, control);
  for (double x = 0.0; x <= 6.0; x += 0.05) {
    EXPECT_NEAR(curve.At(x / 0.3 * 0.3), std::sin(x), 0.01) << x;
  }
}

TEST(BicubicSurfaceTest, ExactAtControlPoints) {
  std::vector<double> control;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      control.push_back(static_cast<double>(i * 10 + j));
    }
  }
  BicubicSurface surface(0.0, 1.0, 4, 0.0, 2.0, 5, control);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(surface.At(static_cast<double>(i), 2.0 * j),
                  static_cast<double>(i * 10 + j), 1e-12);
    }
  }
}

TEST(BicubicSurfaceTest, ReproducesBilinearFunction) {
  // f(x, y) = 2x + 3y + 1 is reproduced exactly by Catmull-Rom bicubic.
  std::vector<double> control;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      control.push_back(2.0 * i + 3.0 * j + 1.0);
    }
  }
  BicubicSurface surface(0.0, 1.0, 5, 0.0, 1.0, 5, control);
  for (double x = 0.0; x <= 4.0; x += 0.25) {
    for (double y = 0.0; y <= 4.0; y += 0.25) {
      EXPECT_NEAR(surface.At(x, y), 2.0 * x + 3.0 * y + 1.0, 1e-9);
    }
  }
}

TEST(BicubicSurfaceTest, ApproximatesSmoothSurface) {
  auto f = [](double x, double y) {
    return std::exp(-0.1 * (x * x + y * y));
  };
  std::vector<double> control;
  constexpr int kN = 9;
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      control.push_back(f(-4.0 + i, -4.0 + j));
    }
  }
  BicubicSurface surface(-4.0, 1.0, kN, -4.0, 1.0, kN, control);
  for (double x = -4.0; x <= 4.0; x += 0.5) {
    for (double y = -4.0; y <= 4.0; y += 0.5) {
      EXPECT_NEAR(surface.At(x, y), f(x, y), 0.02);
    }
  }
}

TEST(BicubicSurfaceTest, ClampsOutsideDomain) {
  std::vector<double> control(4, 7.0);
  BicubicSurface surface(0.0, 1.0, 2, 0.0, 1.0, 2, control);
  EXPECT_DOUBLE_EQ(surface.At(-5.0, -5.0), 7.0);
  EXPECT_DOUBLE_EQ(surface.At(5.0, 5.0), 7.0);
}

TEST(CatmullRomTest, InterpolatesEndpointsOfSegment) {
  EXPECT_DOUBLE_EQ(CatmullRom(0.0, 1.0, 2.0, 3.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(CatmullRom(0.0, 1.0, 2.0, 3.0, 1.0), 2.0);
}

}  // namespace
}  // namespace sjoin
