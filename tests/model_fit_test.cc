#include "sjoin/analysis/model_fit.h"

#include <gtest/gtest.h>

#include "sjoin/common/rng.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

TEST(EmpiricalPmfTest, CountsWithSmoothing) {
  auto pmf = EmpiricalPmf({5, 5, 6}, /*smoothing=*/0.0, /*pad=*/0);
  EXPECT_NEAR(pmf.Prob(5), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(pmf.Prob(6), 1.0 / 3.0, 1e-12);
  auto smoothed = EmpiricalPmf({5, 5, 6}, /*smoothing=*/0.5, /*pad=*/1);
  EXPECT_GT(smoothed.Prob(4), 0.0);
  EXPECT_GT(smoothed.Prob(7), 0.0);
  EXPECT_GT(smoothed.Prob(5), smoothed.Prob(6));
  EXPECT_NEAR(smoothed.TotalMass(), 1.0, 1e-12);
}

TEST(FitTrendProcessTest, RecoversSlopeAndNoise) {
  LinearTrendProcess truth(2.0, 5.0,
                           DiscreteDistribution::BoundedUniform(-3, 3));
  Rng rng(81);
  auto series = SampleRealization(truth, 600, rng);
  auto fitted = FitTrendProcess(series);
  ASSERT_NE(fitted, nullptr);
  const auto* trend = dynamic_cast<const LinearTrendProcess*>(fitted.get());
  ASSERT_NE(trend, nullptr);
  EXPECT_NEAR(trend->slope(), 2.0, 0.01);
  EXPECT_NEAR(trend->intercept(), 5.0, 2.0);
  EXPECT_NEAR(trend->noise().Variance(), 4.0, 0.6);  // w(w+1)/3 = 4.
}

TEST(FitWalkProcessTest, RecoversStepDistribution) {
  RandomWalkProcess truth(DiscreteDistribution::DiscretizedNormal(0.5, 1.0),
                          0);
  Rng rng(82);
  auto series = SampleRealization(truth, 2000, rng);
  auto fitted = FitWalkProcess(series);
  ASSERT_NE(fitted, nullptr);
  const auto* walk = dynamic_cast<const RandomWalkProcess*>(fitted.get());
  ASSERT_NE(walk, nullptr);
  EXPECT_NEAR(walk->step().Mean(), 0.5, 0.1);
  EXPECT_NEAR(walk->step().Variance(), 1.0 + 1.0 / 12.0, 0.2);
}

TEST(OneStepLogLikelihoodTest, TrueModelBeatsWrongModel) {
  Ar1Process truth(2.0, 0.8, 3.0, 10);
  Rng rng(83);
  auto series = SampleRealization(truth, 800, rng);
  StationaryProcess wrong(EmpiricalPmf(series));
  double ll_truth = OneStepLogLikelihood(truth, series, 400);
  double ll_wrong = OneStepLogLikelihood(wrong, series, 400);
  EXPECT_GT(ll_truth, ll_wrong);
}

struct SelectCase {
  const char* expected_family;
  int seed;
};

class ModelSelectorTest : public ::testing::TestWithParam<SelectCase> {};

TEST_P(ModelSelectorTest, PicksTheGeneratingFamily) {
  const SelectCase& param = GetParam();
  Rng rng(static_cast<std::uint64_t>(param.seed));
  std::vector<Value> series;
  std::string family = param.expected_family;
  if (family == "stationary") {
    StationaryProcess process(
        DiscreteDistribution::FromMasses(0, {0.4, 0.3, 0.2, 0.1}));
    series = SampleRealization(process, 1200, rng);
  } else if (family == "trend") {
    LinearTrendProcess process(1.5, 0.0,
                               DiscreteDistribution::BoundedUniform(-5, 5));
    series = SampleRealization(process, 1200, rng);
  } else if (family == "walk") {
    RandomWalkProcess process(
        DiscreteDistribution::DiscretizedNormal(0.0, 2.0), 0);
    series = SampleRealization(process, 1200, rng);
  } else {
    Ar1Process process(10.0, 0.6, 4.0, 25);
    series = SampleRealization(process, 1200, rng);
  }
  auto selected = SelectModel(series);
  ASSERT_TRUE(selected.has_value());
  if (family == "walk") {
    // A random walk is an AR(1) with phi1 = 1; either family is a correct
    // identification.
    EXPECT_TRUE(selected->family == "walk" || selected->family == "ar1")
        << selected->family;
  } else {
    EXPECT_EQ(selected->family, family);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, ModelSelectorTest,
    ::testing::Values(SelectCase{"stationary", 1}, SelectCase{"trend", 2},
                      SelectCase{"walk", 3}, SelectCase{"ar1", 4},
                      SelectCase{"stationary", 5}, SelectCase{"trend", 6},
                      SelectCase{"walk", 7}, SelectCase{"ar1", 8}));

TEST(ModelSelectorTest2, TooShortSeriesRejected) {
  EXPECT_FALSE(SelectModel({1, 2, 3}).has_value());
}

}  // namespace
}  // namespace sjoin
