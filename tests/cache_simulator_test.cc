#include "sjoin/engine/cache_simulator.h"

#include <gtest/gtest.h>

#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lru_policy.h"

namespace sjoin {
namespace {

// Always caches the fetched tuple, evicting the smallest value.
class KeepLargestPolicy final : public ScoredCachingPolicy {
 public:
  const char* name() const override { return "KEEP-LARGEST"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    return static_cast<double>(v);
  }
};

TEST(CacheSimulatorTest, HitsAndMisses) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  KeepLargestPolicy policy;
  auto result = sim.Run({1, 2, 1, 2, 3, 3}, policy);
  // t0: miss(1), cache {1}; t1: miss(2), {1,2}; t2: hit(1); t3: hit(2);
  // t4: miss(3), keep largest -> {2,3}; t5: hit(3).
  EXPECT_EQ(result.misses, 3);
  EXPECT_EQ(result.hits, 3);
}

TEST(CacheSimulatorTest, WarmupSplitsCounts) {
  CacheSimulator sim({.capacity = 2, .warmup = 3});
  KeepLargestPolicy policy;
  auto result = sim.Run({1, 2, 1, 2, 3, 3}, policy);
  EXPECT_EQ(result.counted_hits, 2);    // t3 hit(2), t5 hit(3).
  EXPECT_EQ(result.counted_misses, 1);  // t4 miss(3).
}

TEST(CacheSimulatorTest, CapacityOneThrashes) {
  CacheSimulator sim({.capacity = 1, .warmup = 0});
  KeepLargestPolicy policy;
  auto result = sim.Run({5, 1, 5, 1}, policy);
  // Keep-largest never replaces 5 with 1: t0 miss(5); t1 miss(1), cache
  // stays {5}; t2 hit(5); t3 miss(1).
  EXPECT_EQ(result.hits, 1);
  EXPECT_EQ(result.misses, 3);
}

TEST(CacheSimulatorTest, LruEvictsLeastRecent) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  LruCachingPolicy policy;
  auto result = sim.Run({1, 2, 1, 3, 1, 2}, policy);
  // t0 miss(1); t1 miss(2); t2 hit(1); t3 miss(3) evicts 2 (LRU);
  // t4 hit(1); t5 miss(2).
  EXPECT_EQ(result.hits, 2);
  EXPECT_EQ(result.misses, 4);
}

TEST(CacheSimulatorTest, LfdIsOptimalOnClassicTrace) {
  // Belady's policy keeps the tuple referenced soonest.
  std::vector<Value> refs = {1, 2, 3, 1, 2, 1, 3};
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  LfdCachingPolicy lfd(refs);
  auto lfd_result = sim.Run(refs, lfd);
  LruCachingPolicy lru;
  auto lru_result = sim.Run(refs, lru);
  EXPECT_GE(lfd_result.hits, lru_result.hits);
  // Exhaustive check for this trace: optimum is 3 hits.
  EXPECT_EQ(lfd_result.hits, 3);
}

TEST(CacheSimulatorTest, PolicyObserveCalledOnHits) {
  class CountingPolicy final : public ScoredCachingPolicy {
   public:
    int observes = 0;
    const char* name() const override { return "COUNTING"; }
    void Observe(const CachingContext& ctx) override {
      (void)ctx;
      ++observes;
    }

   protected:
    double Score(Value v, const CachingContext& ctx) override {
      (void)ctx;
      return static_cast<double>(v);
    }
  };
  CacheSimulator sim({.capacity = 4, .warmup = 0});
  CountingPolicy policy;
  sim.Run({1, 1, 1}, policy);
  EXPECT_EQ(policy.observes, 3);
}

}  // namespace
}  // namespace sjoin
