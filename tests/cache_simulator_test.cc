#include "sjoin/engine/cache_simulator.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

// Always caches the fetched tuple, evicting the smallest value.
class KeepLargestPolicy final : public ScoredCachingPolicy {
 public:
  const char* name() const override { return "KEEP-LARGEST"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    return static_cast<double>(v);
  }
};

TEST(CacheSimulatorTest, HitsAndMisses) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  KeepLargestPolicy policy;
  auto result = sim.Run({1, 2, 1, 2, 3, 3}, policy);
  // t0: miss(1), cache {1}; t1: miss(2), {1,2}; t2: hit(1); t3: hit(2);
  // t4: miss(3), keep largest -> {2,3}; t5: hit(3).
  EXPECT_EQ(result.misses, 3);
  EXPECT_EQ(result.hits, 3);
}

TEST(CacheSimulatorTest, WarmupSplitsCounts) {
  CacheSimulator sim({.capacity = 2, .warmup = 3});
  KeepLargestPolicy policy;
  auto result = sim.Run({1, 2, 1, 2, 3, 3}, policy);
  EXPECT_EQ(result.counted_hits, 2);    // t3 hit(2), t5 hit(3).
  EXPECT_EQ(result.counted_misses, 1);  // t4 miss(3).
}

TEST(CacheSimulatorTest, CapacityOneThrashes) {
  CacheSimulator sim({.capacity = 1, .warmup = 0});
  KeepLargestPolicy policy;
  auto result = sim.Run({5, 1, 5, 1}, policy);
  // Keep-largest never replaces 5 with 1: t0 miss(5); t1 miss(1), cache
  // stays {5}; t2 hit(5); t3 miss(1).
  EXPECT_EQ(result.hits, 1);
  EXPECT_EQ(result.misses, 3);
}

TEST(CacheSimulatorTest, LruEvictsLeastRecent) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  LruCachingPolicy policy;
  auto result = sim.Run({1, 2, 1, 3, 1, 2}, policy);
  // t0 miss(1); t1 miss(2); t2 hit(1); t3 miss(3) evicts 2 (LRU);
  // t4 hit(1); t5 miss(2).
  EXPECT_EQ(result.hits, 2);
  EXPECT_EQ(result.misses, 4);
}

TEST(CacheSimulatorTest, LfdIsOptimalOnClassicTrace) {
  // Belady's policy keeps the tuple referenced soonest.
  std::vector<Value> refs = {1, 2, 3, 1, 2, 1, 3};
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  LfdCachingPolicy lfd(refs);
  auto lfd_result = sim.Run(refs, lfd);
  LruCachingPolicy lru;
  auto lru_result = sim.Run(refs, lru);
  EXPECT_GE(lfd_result.hits, lru_result.hits);
  // Exhaustive check for this trace: optimum is 3 hits.
  EXPECT_EQ(lfd_result.hits, 3);
}

TEST(CacheSimulatorTest, PolicyObserveCalledOnHits) {
  class CountingPolicy final : public ScoredCachingPolicy {
   public:
    int observes = 0;
    const char* name() const override { return "COUNTING"; }
    void Observe(const CachingContext& ctx) override {
      (void)ctx;
      ++observes;
    }

   protected:
    double Score(Value v, const CachingContext& ctx) override {
      (void)ctx;
      return static_cast<double>(v);
    }
  };
  CacheSimulator sim({.capacity = 4, .warmup = 0});
  CountingPolicy policy;
  sim.Run({1, 1, 1}, policy);
  EXPECT_EQ(policy.observes, 3);
}

TEST(CacheSimulatorTest, TelemetryReportsStepsAndCandidates) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  KeepLargestPolicy policy;
  auto result = sim.Run({1, 2, 1, 2, 3, 3}, policy);
  EXPECT_EQ(result.telemetry.steps, 6);
  // Under the reduction each step offers the cached supply tuples plus
  // one R' and one S' arrival: at most capacity + 2 candidates.
  EXPECT_EQ(result.telemetry.peak_candidates, 4);
}

// Sliding-window caching (Section 7 semantics through the Theorem 1
// reduction): a cached tuple older than the window misses, and every hit
// refreshes the tuple's age because the reduction swaps in the fresh
// supply tuple.
TEST(CacheSimulatorTest, WindowedEntryExpiresAfterTtl) {
  CacheSimulator sim({.capacity = 2, .warmup = 0, .window = 2});
  KeepLargestPolicy policy;
  // t0 miss(7), fetched at 0. t1 hit(7) refreshes to 1. t2, t3 hit again.
  // Then three non-7 steps age it out: fetched 3, referenced again at 6,
  // 6 - 3 > 2 -> miss.
  auto result = sim.Run({7, 7, 7, 7, 1, 2, 7}, policy);
  // t4 miss(1), t5 miss(2) (capacity 2 keeps {7,2} by keep-largest).
  EXPECT_EQ(result.hits, 3);
  EXPECT_EQ(result.misses, 4);
}

TEST(CacheSimulatorTest, WindowedHitRefreshesTtl) {
  CacheSimulator sim({.capacity = 1, .warmup = 0, .window = 2});
  KeepLargestPolicy policy;
  // 7 referenced every other step: each gap is 2 <= window, so after the
  // initial fetch every reference hits — the TTL refresh at work. Without
  // refresh the age relative to t0 would exceed the window from t4 on.
  auto result = sim.Run({7, 0, 7, 0, 7, 0, 7}, policy);
  EXPECT_EQ(result.hits, 3);
  EXPECT_EQ(result.misses, 4);
}

TEST(CacheSimulatorTest, UnwindowedRunsUnaffectedByWindowFieldDefault) {
  CacheSimulator windowless({.capacity = 2, .warmup = 0});
  CacheSimulator huge_window(
      {.capacity = 2, .warmup = 0, .window = std::optional<Time>{1000}});
  KeepLargestPolicy a;
  KeepLargestPolicy b;
  std::vector<Value> refs = {1, 2, 1, 2, 3, 3, 1, 2};
  auto lhs = windowless.Run(refs, a);
  auto rhs = huge_window.Run(refs, b);
  EXPECT_EQ(lhs.hits, rhs.hits);
  EXPECT_EQ(lhs.misses, rhs.misses);
}

// The inverse unification direction: arbitrary joining policies serve the
// caching problem by running on the reduced streams; hits are join
// results. Sound because cached R' tuples can never join future arrivals
// (occurrence numbers only grow), so only supply-tuple retention matters.
TEST(CacheSimulatorTest, RunJoinPolicyServesCachingProblem) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  std::vector<Value> refs = {1, 2, 1, 2, 3, 3};

  // PROB on the reduced streams is a legal (if weak) caching policy.
  // Each reference can hit at most once, and first references always
  // miss, so no policy exceeds 3 hits on this trace.
  ProbPolicy prob;
  auto prob_result = sim.RunJoinPolicy(refs, prob);
  EXPECT_EQ(prob_result.hits + prob_result.misses,
            static_cast<std::int64_t>(refs.size()));
  EXPECT_GE(prob_result.hits, 0);
  EXPECT_LE(prob_result.hits, 3);
  EXPECT_EQ(prob_result.telemetry.steps,
            static_cast<std::int64_t>(refs.size()));

  RandomPolicy random(3, std::nullopt);
  auto random_result = sim.RunJoinPolicy(refs, random);
  EXPECT_EQ(random_result.hits + random_result.misses,
            static_cast<std::int64_t>(refs.size()));
}

}  // namespace
}  // namespace sjoin
