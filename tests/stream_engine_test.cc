// The unified StreamEngine core: direct construction must be
// indistinguishable from the JoinSimulator / MultiJoinSimulator façades
// (totals, telemetry, composition traces), observers must compose, and
// value-domain partitioning must never change results — partitions only
// shape the Phase-1 index layout.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/partition_map.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

std::vector<Value> SampleValues(Time len, Value domain, Rng& rng) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    out.push_back(rng.UniformInt(0, domain - 1));
  }
  return out;
}

/// Deterministic engine policy usable on any topology: keep the
/// highest-id candidates (i.e. the newest tuples, ties broken by stream).
class KeepNewestEnginePolicy final : public EnginePolicy {
 public:
  std::vector<TupleId> SelectRetained(const EngineContext& ctx) override {
    std::vector<TupleId> ids;
    ids.reserve(ctx.cached->size() + ctx.arrivals->size());
    for (const StreamTuple& tuple : *ctx.cached) ids.push_back(tuple.id);
    for (const StreamTuple& tuple : *ctx.arrivals) ids.push_back(tuple.id);
    std::sort(ids.begin(), ids.end(), std::greater<TupleId>());
    if (ids.size() > ctx.capacity) ids.resize(ctx.capacity);
    return ids;
  }
  const char* name() const override { return "keep-newest"; }
};

/// Runs the same realization through the JoinSimulator façade and through
/// a hand-built StreamEngine + BinaryPolicyAdapter + observer chain, and
/// expects bit-identical results. `policy.Reset()` must restore any
/// internal randomness (all repo policies do).
void ExpectFacadeMatchesDirect(const JoinSimulator::Options& options,
                               const std::vector<Value>& r,
                               const std::vector<Value>& s,
                               ReplacementPolicy& policy) {
  JoinRunResult facade = JoinSimulator(options).Run(r, s, policy);

  StreamEngine engine(StreamTopology::Binary(),
                      {.capacity = options.capacity,
                       .warmup = options.warmup,
                       .window = options.window});
  BinaryPolicyAdapter adapter(&policy);
  PerfObserver perf;
  std::vector<double> fractions;
  CacheCompositionObserver composition(0, &fractions);
  ValidationObserver validation;
  EngineRunResult direct = engine.Run(
      {&r, &s}, adapter, {&perf, &composition, &validation});

  EXPECT_EQ(facade.total_results, direct.total_results);
  EXPECT_EQ(facade.counted_results, direct.counted_results);
  EXPECT_EQ(facade.telemetry.peak_candidates,
            perf.telemetry().peak_candidates);
  EXPECT_EQ(facade.telemetry.steps, perf.telemetry().steps);
  if (options.track_cache_composition) {
    EXPECT_EQ(facade.r_fraction_by_time, fractions);
  }
}

TEST(StreamEngineTest, BinaryFacadeMatchesDirectEngine) {
  Rng rng(7);
  for (std::size_t capacity : {std::size_t{3}, std::size_t{40}}) {
    for (int windowed = 0; windowed < 2; ++windowed) {
      std::vector<Value> r = SampleValues(300, 12, rng);
      std::vector<Value> s = SampleValues(300, 12, rng);
      JoinSimulator::Options options;
      options.capacity = capacity;
      options.warmup = 20;
      if (windowed != 0) options.window = 9;
      options.track_cache_composition = true;

      RandomPolicy random(11, std::nullopt);
      ExpectFacadeMatchesDirect(options, r, s, random);
      ProbPolicy prob;
      ExpectFacadeMatchesDirect(options, r, s, prob);
    }
  }
}

TEST(StreamEngineTest, HashPartitioningNeverChangesResults) {
  Rng rng(13);
  // Capacity >= 32 engages the value index, the only thing partitions
  // shape; also run at capacity 4 to cover the linear-scan path.
  for (std::size_t capacity : {std::size_t{4}, std::size_t{48}}) {
    std::vector<Value> r = SampleValues(400, 10, rng);
    std::vector<Value> s = SampleValues(400, 10, rng);
    StreamEngine::Options options{.capacity = capacity, .warmup = 16};

    ProbPolicy prob;
    BinaryPolicyAdapter adapter(&prob);
    StreamEngine single(StreamTopology::Binary(), options);
    PerfObserver single_perf;
    EngineRunResult single_run = single.Run({&r, &s}, adapter, {&single_perf});

    for (std::size_t partitions : {std::size_t{2}, std::size_t{7}}) {
      HashPartition map(partitions);
      StreamEngine::Options sharded = options;
      sharded.partitions = &map;
      StreamEngine engine(StreamTopology::Binary(), sharded);
      PerfObserver perf;
      EngineRunResult run = engine.Run({&r, &s}, adapter, {&perf});
      EXPECT_EQ(single_run.total_results, run.total_results)
          << partitions << " partitions, capacity " << capacity;
      EXPECT_EQ(single_run.counted_results, run.counted_results);
      EXPECT_EQ(single_perf.telemetry().peak_candidates,
                perf.telemetry().peak_candidates);
    }
  }
}

TEST(StreamEngineTest, MultiFacadeMatchesDirectEngine) {
  Rng rng(29);
  std::vector<std::vector<Value>> streams;
  for (int s = 0; s < 3; ++s) streams.push_back(SampleValues(200, 6, rng));
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}, {0, 2}};

  MultiJoinSimulator::Options options;
  options.capacity = 5;
  options.warmup = 10;
  KeepNewestEnginePolicy policy;
  MultiJoinRunResult facade =
      MultiJoinSimulator(3, edges, options).Run(streams, policy);

  StreamEngine engine(StreamTopology(3, edges),
                      {.capacity = options.capacity,
                       .warmup = options.warmup});
  PerfObserver perf;
  ValidationObserver validation;
  EngineRunResult direct =
      engine.Run({&streams[0], &streams[1], &streams[2]}, policy,
                 {&perf, &validation});

  EXPECT_EQ(facade.total_results, direct.total_results);
  EXPECT_EQ(facade.counted_results, direct.counted_results);
  EXPECT_EQ(facade.telemetry.peak_candidates,
            perf.telemetry().peak_candidates);
  EXPECT_EQ(facade.telemetry.steps, perf.telemetry().steps);
}

TEST(StreamEngineTest, EngineIsReusableAcrossRuns) {
  Rng rng(41);
  std::vector<Value> r = SampleValues(150, 8, rng);
  std::vector<Value> s = SampleValues(150, 8, rng);
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);
  StreamEngine engine(StreamTopology::Binary(), {.capacity = 6, .warmup = 8});
  EngineRunResult first = engine.Run({&r, &s}, adapter);
  EngineRunResult second = engine.Run({&r, &s}, adapter);
  EXPECT_EQ(first.total_results, second.total_results);
  EXPECT_EQ(first.counted_results, second.counted_results);
}

TEST(StreamEngineTest, PerfObserverCountsStepsAndPeakCandidates) {
  std::vector<Value> r{1, 2, 3, 4, 5};
  std::vector<Value> s{1, 2, 3, 4, 5};
  KeepNewestEnginePolicy policy;
  StreamEngine engine(StreamTopology::Binary(), {.capacity = 2});
  PerfObserver perf;
  engine.Run({&r, &s}, policy, {&perf});
  EXPECT_EQ(perf.telemetry().steps, 5);
  // Step 0 offers the two arrivals; every later step offers a full cache
  // of 2 plus the two arrivals.
  EXPECT_EQ(perf.telemetry().peak_candidates, 4);
  EXPECT_GE(perf.telemetry().run_ns, 0);
}

TEST(StreamEngineTest, CacheCompositionObserverTracksStreamFractions) {
  // R and S never join (disjoint values); keep-newest retains one R and
  // one S tuple every step after the first, so the R fraction settles at
  // exactly one half.
  std::vector<Value> r{0, 0, 0, 0};
  std::vector<Value> s{1, 1, 1, 1};
  KeepNewestEnginePolicy policy;
  StreamEngine engine(StreamTopology::Binary(), {.capacity = 2});
  std::vector<double> fractions;
  CacheCompositionObserver composition(0, &fractions);
  engine.Run({&r, &s}, policy, {&composition});
  ASSERT_EQ(fractions.size(), 4u);
  for (double f : fractions) EXPECT_DOUBLE_EQ(f, 0.5);
}

TEST(StreamEngineTest, ScoreTraceObserverRecordsEveryDecision) {
  std::vector<Value> r{1, 2, 1, 3};
  std::vector<Value> s{2, 1, 3, 1};
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);
  StreamEngine engine(StreamTopology::Binary(), {.capacity = 2});
  ScoreTraceObserver trace(&prob);
  engine.Run({&r, &s}, adapter, {&trace});

  // Step 0 scores the 2 arrivals; steps 1..3 score 2 cached + 2 arrivals.
  ASSERT_EQ(trace.samples().size(), 2u + 3u * 4u);
  EXPECT_EQ(trace.samples().front().step, 0);
  EXPECT_EQ(trace.samples().back().step, 3);
  for (const ScoreSample& sample : trace.samples()) {
    EXPECT_GE(sample.step, 0);
    EXPECT_LT(sample.step, 4);
    EXPECT_GE(sample.id, 0);
    EXPECT_LT(sample.id, 8);
  }
  // The trace detaches at run end: further decisions record nothing.
  std::size_t recorded = trace.samples().size();
  JoinSimulator sim({.capacity = 2});
  sim.Run(r, s, prob);
  EXPECT_EQ(trace.samples().size(), recorded);
}

TEST(StreamEngineTest, TopologyExposesPartnersAndEdges) {
  StreamTopology binary = StreamTopology::Binary();
  EXPECT_EQ(binary.num_streams(), 2);
  ASSERT_EQ(binary.PartnersOf(0).size(), 1u);
  EXPECT_EQ(binary.PartnersOf(0)[0], 1);
  EXPECT_TRUE(binary.Joins(0, 1));
  EXPECT_TRUE(binary.Joins(1, 0));
  EXPECT_FALSE(binary.Joins(0, 0));

  StreamTopology path(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(path.PartnersOf(1).size(), 2u);
  EXPECT_FALSE(path.Joins(0, 2));
}

TEST(StreamEngineTest, WindowLimitsJoinPairs) {
  // R emits value 5 once; S emits 5 every step and keep-newest always
  // caches the R tuple. Without a window every later S arrival joins it;
  // with window w the R tuple only joins for w more steps.
  std::vector<Value> r{5, 0, 0, 0, 0, 0, 0, 0};
  std::vector<Value> s{9, 5, 5, 5, 5, 5, 5, 5};
  KeepNewestEnginePolicy keep;

  class KeepFirstR final : public EnginePolicy {
   public:
    std::vector<TupleId> SelectRetained(const EngineContext& ctx) override {
      return {0};  // StreamTupleIdAt(2, 0, 0): R's tuple from time 0.
    }
    const char* name() const override { return "keep-first-r"; }
  } keep_first;

  StreamEngine unwindowed(StreamTopology::Binary(), {.capacity = 1});
  EXPECT_EQ(unwindowed.Run({&r, &s}, keep_first).total_results, 7);

  StreamEngine windowed(StreamTopology::Binary(),
                        {.capacity = 1, .window = 3});
  // The R tuple (arrival 0) is in window at times 1..3 only.
  EXPECT_EQ(windowed.Run({&r, &s}, keep_first).total_results, 3);
}

}  // namespace
}  // namespace sjoin
