#include "sjoin/core/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/random_walk_process.h"

namespace sjoin {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TableIoTest, OffsetTableRoundTrips) {
  OffsetTable original(-3, {0.1, 0.2, 0.5, 0.2, 0.1, 0.05, 0.0125});
  std::string path = TempPath("offset_table.txt");
  ASSERT_TRUE(SaveOffsetTable(original, path));
  auto loaded = LoadOffsetTable(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->min_offset(), original.min_offset());
  EXPECT_EQ(loaded->max_offset(), original.max_offset());
  for (Value d = original.min_offset() - 2; d <= original.max_offset() + 2;
       ++d) {
    EXPECT_DOUBLE_EQ(loaded->At(d), original.At(d)) << d;
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, PrecomputedWalkTableRoundTripsExactly) {
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.5, 1.0),
                         0);
  ExpLifetime lifetime(8.0);
  OffsetTable table = PrecomputeWalkJoinHeeb(walk, lifetime, 30);
  std::string path = TempPath("walk_table.txt");
  ASSERT_TRUE(SaveOffsetTable(table, path));
  auto loaded = LoadOffsetTable(path);
  ASSERT_TRUE(loaded.has_value());
  for (Value d = table.min_offset(); d <= table.max_offset(); ++d) {
    EXPECT_DOUBLE_EQ(loaded->At(d), table.At(d));
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, SurfaceTableRoundTrips) {
  HeebSurfaceTable original(-2, 2, 0, 5,
                            {{0.1, 0.2, 0.3, 0.2, 0.1},
                             {0.2, 0.4, 0.6, 0.4, 0.2},
                             {0.05, 0.1, 0.2, 0.1, 0.05}});
  std::string path = TempPath("surface_table.txt");
  ASSERT_TRUE(SaveSurfaceTable(original, path));
  auto loaded = LoadSurfaceTable(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_columns(), 3u);
  for (Value v = -2; v <= 2; ++v) {
    for (Value x = 0; x <= 10; x += 1) {
      EXPECT_DOUBLE_EQ(loaded->At(v, x), original.At(v, x))
          << "v=" << v << " x=" << x;
    }
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileFailsGracefully) {
  EXPECT_FALSE(LoadOffsetTable("/nonexistent/dir/table.txt").has_value());
  EXPECT_FALSE(LoadSurfaceTable("/nonexistent/dir/table.txt").has_value());
}

TEST(TableIoTest, WrongMagicRejected) {
  std::string path = TempPath("bad_magic.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "not-a-table\n1 2\n0.5\n0.5\n");
  std::fclose(f);
  EXPECT_FALSE(LoadOffsetTable(path).has_value());
  EXPECT_FALSE(LoadSurfaceTable(path).has_value());
  std::remove(path.c_str());
}

TEST(TableIoTest, TruncatedFileRejected) {
  std::string path = TempPath("truncated.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "sjoin-offset-table-v1\n0 5\n0.5\n");  // 1 of 5 values.
  std::fclose(f);
  EXPECT_FALSE(LoadOffsetTable(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sjoin
