// Determinism tests for the parallel benchmark harness: a roster run on
// 4 threads must produce bit-identical summaries to the serial run, and
// the perf_smoke binary must emit valid JSON.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "harness/configs.h"
#include "harness/runner.h"
#include "sjoin/common/json_writer.h"
#include "sjoin/common/thread_pool.h"

namespace sjoin::bench {
namespace {

RosterOptions SmallOptions() {
  RosterOptions options;
  options.cache = 8;
  options.len = 300;
  options.runs = 3;
  options.seed = 7;
  options.include_flow_expect = true;  // Covers the process-clone path.
  options.flow_expect_lookahead = 3;
  return options;
}

/// Exact equality on purpose: the harness promises bit-identical results
/// for every thread count, not merely statistically close ones.
void ExpectIdenticalRosters(const std::vector<AlgoResult>& serial,
                            const std::vector<AlgoResult>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].name);
    EXPECT_EQ(serial[i].name, parallel[i].name);
    EXPECT_EQ(serial[i].summary.mean, parallel[i].summary.mean);
    EXPECT_EQ(serial[i].summary.stddev, parallel[i].summary.stddev);
    EXPECT_EQ(serial[i].summary.min, parallel[i].summary.min);
    EXPECT_EQ(serial[i].summary.max, parallel[i].summary.max);
  }
}

TEST(BenchHarnessTest, ParallelRosterMatchesSerialOnTower) {
  JoinWorkload workload = MakeTower();
  RosterOptions options = SmallOptions();
  options.threads = 1;
  auto serial = RunJoinRoster(workload, options);
  ASSERT_FALSE(serial.empty());
  options.threads = 4;
  auto parallel = RunJoinRoster(workload, options);
  ExpectIdenticalRosters(serial, parallel);
}

TEST(BenchHarnessTest, ParallelRosterMatchesSerialOnWalk) {
  // WALK exercises RandomWalkProcess, whose lazily memoized convolution
  // powers are the reason jobs clone their processes.
  JoinWorkload workload = MakeWalk();
  RosterOptions options = SmallOptions();
  options.include_flow_expect = false;  // FlowExpect on WALK is slow.
  options.threads = 1;
  auto serial = RunJoinRoster(workload, options);
  options.threads = 4;
  auto parallel = RunJoinRoster(workload, options);
  ExpectIdenticalRosters(serial, parallel);
}

TEST(BenchHarnessTest, EnqueuedRostersOnSharedPoolMatchSerial) {
  // The sweep pattern: several rosters in flight on one pool at once.
  JoinWorkload workload = MakeTower();
  RosterOptions options = SmallOptions();
  options.include_flow_expect = false;
  std::vector<std::size_t> caches = {4, 8, 16};

  std::vector<std::vector<AlgoResult>> serial;
  for (std::size_t cache : caches) {
    options.cache = cache;
    options.threads = 1;
    serial.push_back(RunJoinRoster(workload, options));
  }

  ThreadPool pool(4);
  std::vector<PendingRoster> pending;
  for (std::size_t cache : caches) {
    options.cache = cache;
    pending.push_back(EnqueueJoinRoster(workload, options, pool));
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    SCOPED_TRACE("cache=" + std::to_string(caches[i]));
    ExpectIdenticalRosters(serial[i], pending[i].Await());
  }
}

#ifdef PERF_SMOKE_BIN
TEST(BenchHarnessTest, PerfSmokeEmitsValidJson) {
  const std::string out = "perf_smoke_test_out.json";
  std::remove(out.c_str());
  std::string cmd = std::string("\"") + PERF_SMOKE_BIN +
                    "\" --len=200 --runs=1 --out=" + out + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  std::ifstream in(out);
  ASSERT_TRUE(in.good()) << "perf_smoke did not write " << out;
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_TRUE(JsonParses(text.str()));
  EXPECT_NE(text.str().find("\"schema\":\"sjoin-perf-v6\""),
            std::string::npos);
  EXPECT_NE(text.str().find("\"peak_candidates\""), std::string::npos);
  EXPECT_NE(text.str().find("\"shards\":8"), std::string::npos);
  EXPECT_NE(text.str().find("\"skew_ratio_adaptive\""), std::string::npos);
  EXPECT_NE(text.str().find("\"planner\":1"), std::string::npos);
  EXPECT_NE(text.str().find("\"probe_cache_hit_rate\""), std::string::npos);
  EXPECT_NE(text.str().find("\"batch\":0"), std::string::npos);
  std::remove(out.c_str());
}
#endif  // PERF_SMOKE_BIN

}  // namespace
}  // namespace sjoin::bench
