// Differential suite for skew-adaptive sharding: ShardedStreamEngine with
// the AdaptivePartitionMap enabled, on the skewed workloads the rebalancer
// exists for (Zipf popularity, bursty phases, regime switches), against
// the serial StreamEngine bit for bit — plus rerun determinism of the
// rebalance history itself. (The SJOIN_DIFF_ADAPTIVE env hook additionally
// reruns the other suites' optimized sides adaptively; this suite is the
// dedicated, always-on statement of the contract.)

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialAdaptiveTest, AdaptiveEngineMatchesSerialBitForBit) {
  const DifferentialSuite* suite = FindDifferentialSuite("adaptive_engine");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
