#include "sjoin/common/shard_workers.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace sjoin {
namespace {

// ---------------------------------------------------------------------------
// ShardArena

TEST(ShardArenaTest, AllocationsAreDisjointAndAligned) {
  ShardArena arena;
  double* a = arena.AllocArray<double>(16);
  std::int32_t* b = arena.AllocArray<std::int32_t>(7);
  double* c = arena.AllocArray<double>(3);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(std::int32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % alignof(double), 0u);

  // Write through every allocation; no overlap means all values survive.
  for (int i = 0; i < 16; ++i) a[i] = i + 0.5;
  for (int i = 0; i < 7; ++i) b[i] = -i;
  for (int i = 0; i < 3; ++i) c[i] = 100.0 + i;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], i + 0.5);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(b[i], -i);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(c[i], 100.0 + i);
  EXPECT_GE(arena.used(), 16 * sizeof(double) + 7 * sizeof(std::int32_t) +
                              3 * sizeof(double));
}

TEST(ShardArenaTest, ResetRewindsWithoutReleasing) {
  ShardArena arena;
  arena.AllocArray<std::byte>(1000);
  std::size_t capacity = arena.capacity();
  std::int64_t growth = arena.growth_events();
  EXPECT_GT(capacity, 0u);
  EXPECT_GT(growth, 0);

  arena.Reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.capacity(), capacity);

  // Same-size reallocation after Reset must reuse the existing block:
  // no new capacity, no growth event.
  arena.AllocArray<std::byte>(1000);
  EXPECT_EQ(arena.capacity(), capacity);
  EXPECT_EQ(arena.growth_events(), growth);
}

TEST(ShardArenaTest, ReservePreventsSteadyStateGrowth) {
  ShardArena arena;
  arena.Reserve(64 * 1024);
  std::int64_t growth = arena.growth_events();
  for (int step = 0; step < 50; ++step) {
    arena.Reset();
    arena.AllocArray<double>(1024);
    arena.AllocArray<std::int64_t>(2048);
    arena.AllocArray<std::byte>(8192);
  }
  EXPECT_EQ(arena.growth_events(), growth);
}

TEST(ShardArenaTest, OverflowGrowsAndCountsGrowthEvents) {
  ShardArena arena;
  arena.Reserve(4096);
  std::int64_t growth = arena.growth_events();
  // Far beyond the reserve: must still succeed, with a recorded growth.
  std::byte* big = arena.AllocArray<std::byte>(1 << 20);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 1 << 20);
  EXPECT_GT(arena.growth_events(), growth);
  EXPECT_GE(arena.capacity(), (1u << 20));
}

// ---------------------------------------------------------------------------
// ShardWorkers

struct EpochCounters {
  std::vector<std::atomic<int>> per_worker;
  explicit EpochCounters(int n) : per_worker(static_cast<std::size_t>(n)) {}
  static void Bump(void* raw, int worker) {
    auto* self = static_cast<EpochCounters*>(raw);
    self->per_worker[static_cast<std::size_t>(worker)].fetch_add(
        1, std::memory_order_relaxed);
  }
};

TEST(ShardWorkersTest, EverySliceRunsExactlyOncePerEpoch) {
  for (int workers : {1, 2, 3, 4}) {
    ShardWorkers team({.workers = workers});
    EXPECT_EQ(team.num_workers(), workers);
    EpochCounters counters(workers);
    constexpr int kEpochs = 500;
    for (int e = 0; e < kEpochs; ++e) {
      team.RunEpoch(&EpochCounters::Bump, &counters);
    }
    for (int w = 0; w < workers; ++w) {
      EXPECT_EQ(counters.per_worker[static_cast<std::size_t>(w)].load(),
                kEpochs)
          << "workers=" << workers << " worker=" << w;
    }
  }
}

struct ThreadIdRecorder {
  std::vector<std::thread::id> ids;
  static void Record(void* raw, int worker) {
    static_cast<ThreadIdRecorder*>(raw)
        ->ids[static_cast<std::size_t>(worker)] = std::this_thread::get_id();
  }
};

TEST(ShardWorkersTest, WorkerZeroIsTheCallingThread) {
  ShardWorkers team({.workers = 3});
  ThreadIdRecorder recorder;
  recorder.ids.resize(3);
  team.RunEpoch(&ThreadIdRecorder::Record, &recorder);
  EXPECT_EQ(recorder.ids[0], std::this_thread::get_id());
  // Spawned workers run on distinct threads that are not the caller.
  std::set<std::thread::id> distinct(recorder.ids.begin(),
                                     recorder.ids.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(ShardWorkersTest, SingleWorkerTeamIsInline) {
  ShardWorkers team({.workers = 1});
  ThreadIdRecorder recorder;
  recorder.ids.resize(1);
  team.RunEpoch(&ThreadIdRecorder::Record, &recorder);
  EXPECT_EQ(recorder.ids[0], std::this_thread::get_id());
}

TEST(ShardWorkersTest, EpochWritesAreVisibleAcrossSlicesAndDriver) {
  // The driver writes inputs before the epoch; every slice squares its
  // cell; the driver must read the results without any extra sync.
  struct Shared {
    int values[8];
    static void Square(void* raw, int worker) {
      auto* self = static_cast<Shared*>(raw);
      self->values[worker] *= self->values[worker];
    }
  };
  ShardWorkers team({.workers = 8});
  Shared shared;
  for (int round = 1; round <= 100; ++round) {
    for (int w = 0; w < 8; ++w) shared.values[w] = round + w;
    team.RunEpoch(&Shared::Square, &shared);
    for (int w = 0; w < 8; ++w) {
      ASSERT_EQ(shared.values[w], (round + w) * (round + w));
    }
  }
}

struct Thrower {
  std::atomic<int> ran{0};
  int throw_below = 0;  // Workers with index < throw_below throw.
  static void Run(void* raw, int worker) {
    auto* self = static_cast<Thrower*>(raw);
    self->ran.fetch_add(1, std::memory_order_relaxed);
    if (worker < self->throw_below) {
      throw std::runtime_error("worker " + std::to_string(worker));
    }
  }
};

TEST(ShardWorkersTest, RethrowsLowestWorkersErrorAndStaysUsable) {
  ShardWorkers team({.workers = 4});
  Thrower thrower;
  thrower.throw_below = 3;  // Workers 0, 1, 2 all throw.
  try {
    team.RunEpoch(&Thrower::Run, &thrower);
    FAIL() << "expected RunEpoch to rethrow";
  } catch (const std::runtime_error& error) {
    // Deterministic: the lowest-indexed worker's exception wins.
    EXPECT_STREQ(error.what(), "worker 0");
  }
  // Every slice still ran to completion despite the throws.
  EXPECT_EQ(thrower.ran.load(), 4);

  // The team survives: later epochs run cleanly on all workers.
  EpochCounters counters(4);
  team.RunEpoch(&EpochCounters::Bump, &counters);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(counters.per_worker[static_cast<std::size_t>(w)].load(), 1);
  }
}

TEST(ShardWorkersTest, InlineTeamPropagatesExceptions) {
  ShardWorkers team({.workers = 1});
  Thrower thrower;
  thrower.throw_below = 1;
  EXPECT_THROW(team.RunEpoch(&Thrower::Run, &thrower), std::runtime_error);
  EpochCounters counters(1);
  team.RunEpoch(&EpochCounters::Bump, &counters);
  EXPECT_EQ(counters.per_worker[0].load(), 1);
}

TEST(ShardWorkersTest, ArenasAreWorkerPrivateAndResettable) {
  ShardWorkers team({.workers = 3});
  struct Fill {
    ShardWorkers* team;
    static void Run(void* raw, int worker) {
      auto* self = static_cast<Fill*>(raw);
      // Each slice carves from its own arena and stamps its index.
      int* cells = self->team->arena(worker).AllocArray<int>(256);
      for (int i = 0; i < 256; ++i) cells[i] = worker;
    }
  };
  Fill fill{&team};
  team.RunEpoch(&Fill::Run, &fill);
  for (int w = 0; w < 3; ++w) {
    EXPECT_GE(team.arena(w).used(), 256 * sizeof(int));
    team.arena(w).Reset();
    EXPECT_EQ(team.arena(w).used(), 0u);
  }
}

TEST(ShardWorkersTest, BatchHintsDoNotAffectResults) {
  ShardWorkers team({.workers = 4});
  EpochCounters counters(4);
  team.BeginBatch();
  for (int e = 0; e < 200; ++e) {
    team.RunEpoch(&EpochCounters::Bump, &counters);
  }
  team.EndBatch();
  // And epochs after the batch ended still work (workers park again).
  team.RunEpoch(&EpochCounters::Bump, &counters);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(counters.per_worker[static_cast<std::size_t>(w)].load(), 201);
  }
}

TEST(ShardWorkersTest, PinnedTeamRunsEverySlice) {
  // Affinity is best-effort; correctness must not depend on it.
  ShardWorkers team({.workers = 4, .pin_threads = true});
  EpochCounters counters(4);
  for (int e = 0; e < 50; ++e) {
    team.RunEpoch(&EpochCounters::Bump, &counters);
  }
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(counters.per_worker[static_cast<std::size_t>(w)].load(), 50);
  }
}

TEST(ShardWorkersTest, EpochKindCountersTrackEachKindSeparately) {
  ShardWorkers team({.workers = 2});
  EXPECT_EQ(team.total_epochs(), 0);
  EpochCounters counters(2);
  team.RunEpoch(&EpochCounters::Bump, &counters);  // kGeneric default.
  for (int e = 0; e < 3; ++e) {
    team.RunEpoch(&EpochCounters::Bump, &counters,
                  ShardWorkers::EpochKind::kStep);
  }
  for (int e = 0; e < 2; ++e) {
    team.RunEpoch(&EpochCounters::Bump, &counters,
                  ShardWorkers::EpochKind::kMerge);
  }
  team.RunEpoch(&EpochCounters::Bump, &counters,
                ShardWorkers::EpochKind::kMigration);

  EXPECT_EQ(team.epochs(ShardWorkers::EpochKind::kGeneric), 1);
  EXPECT_EQ(team.epochs(ShardWorkers::EpochKind::kStep), 3);
  EXPECT_EQ(team.epochs(ShardWorkers::EpochKind::kMerge), 2);
  EXPECT_EQ(team.epochs(ShardWorkers::EpochKind::kMigration), 1);
  EXPECT_EQ(team.total_epochs(), 7);
  // Counters are bookkeeping only — every slice still ran once per epoch.
  for (int w = 0; w < 2; ++w) {
    EXPECT_EQ(counters.per_worker[static_cast<std::size_t>(w)].load(), 7);
  }
}

TEST(ShardWorkersTest, TeamsConstructAndJoinCleanly) {
  // Lifecycle churn: construct, run one epoch, destruct, repeatedly. The
  // destructor must wake parked workers and join them every time.
  for (int round = 0; round < 20; ++round) {
    ShardWorkers team({.workers = 1 + round % 4});
    EpochCounters counters(team.num_workers());
    team.RunEpoch(&EpochCounters::Bump, &counters);
  }
  // A team that never ran an epoch must also tear down cleanly.
  { ShardWorkers idle({.workers = 3}); }
}

}  // namespace
}  // namespace sjoin
