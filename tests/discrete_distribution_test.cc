#include "sjoin/stochastic/discrete_distribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sjoin/common/rng.h"

namespace sjoin {
namespace {

TEST(DiscreteDistributionTest, EmptyByDefault) {
  DiscreteDistribution d;
  EXPECT_TRUE(d.IsEmpty());
  EXPECT_EQ(d.Prob(0), 0.0);
  EXPECT_EQ(d.TotalMass(), 0.0);
}

TEST(DiscreteDistributionTest, FromMassesNormalizes) {
  auto d = DiscreteDistribution::FromMasses(5, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.Prob(5), 0.25);
  EXPECT_DOUBLE_EQ(d.Prob(6), 0.75);
  EXPECT_DOUBLE_EQ(d.Prob(4), 0.0);
  EXPECT_DOUBLE_EQ(d.Prob(7), 0.0);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
}

TEST(DiscreteDistributionTest, AllZeroMassesYieldEmpty) {
  auto d = DiscreteDistribution::FromMasses(0, {0.0, 0.0});
  EXPECT_TRUE(d.IsEmpty());
}

TEST(DiscreteDistributionTest, PointMass) {
  auto d = DiscreteDistribution::PointMass(-3);
  EXPECT_DOUBLE_EQ(d.Prob(-3), 1.0);
  EXPECT_DOUBLE_EQ(d.Mean(), -3.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_EQ(d.MinValue(), -3);
  EXPECT_EQ(d.MaxValue(), -3);
}

TEST(DiscreteDistributionTest, BoundedUniformMoments) {
  auto d = DiscreteDistribution::BoundedUniform(-10, 10);
  EXPECT_EQ(d.SupportSize(), 21u);
  EXPECT_NEAR(d.Prob(0), 1.0 / 21.0, 1e-12);
  EXPECT_NEAR(d.Mean(), 0.0, 1e-12);
  // Variance of discrete uniform over [-w, w] is w(w+1)/3.
  EXPECT_NEAR(d.Variance(), 10.0 * 11.0 / 3.0, 1e-9);
}

TEST(DiscreteDistributionTest, DiscretizedNormalMatchesMoments) {
  auto d = DiscreteDistribution::DiscretizedNormal(2.5, 3.0);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-9);
  EXPECT_NEAR(d.Mean(), 2.5, 1e-6);
  // Discretization adds 1/12 to the variance.
  EXPECT_NEAR(d.Variance(), 9.0 + 1.0 / 12.0, 1e-2);
}

TEST(DiscreteDistributionTest, TruncatedNormalRespectsBounds) {
  auto d = DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 5.0, -10, 10);
  EXPECT_EQ(d.MinValue(), -10);
  EXPECT_EQ(d.MaxValue(), 10);
  EXPECT_NEAR(d.TotalMass(), 1.0, 1e-12);
  EXPECT_GT(d.Prob(0), d.Prob(10));
  EXPECT_NEAR(d.Prob(-7), d.Prob(7), 1e-12);
}

TEST(DiscreteDistributionTest, ShiftedBy) {
  auto d = DiscreteDistribution::BoundedUniform(0, 4).ShiftedBy(100);
  EXPECT_EQ(d.MinValue(), 100);
  EXPECT_EQ(d.MaxValue(), 104);
  EXPECT_NEAR(d.Prob(102), 0.2, 1e-12);
  EXPECT_DOUBLE_EQ(d.Prob(2), 0.0);
}

TEST(DiscreteDistributionTest, ConvolveUniformPair) {
  auto d = DiscreteDistribution::BoundedUniform(0, 1);
  auto sum = d.Convolve(d);  // Two fair coins: {0:1/4, 1:1/2, 2:1/4}.
  EXPECT_NEAR(sum.Prob(0), 0.25, 1e-12);
  EXPECT_NEAR(sum.Prob(1), 0.5, 1e-12);
  EXPECT_NEAR(sum.Prob(2), 0.25, 1e-12);
  EXPECT_NEAR(sum.Mean(), 1.0, 1e-12);
}

TEST(DiscreteDistributionTest, ConvolveMeansAndVariancesAdd) {
  auto a = DiscreteDistribution::BoundedUniform(-2, 5);
  auto b = DiscreteDistribution::FromMasses(1, {0.5, 0.2, 0.3});
  auto sum = a.Convolve(b);
  EXPECT_NEAR(sum.Mean(), a.Mean() + b.Mean(), 1e-9);
  EXPECT_NEAR(sum.Variance(), a.Variance() + b.Variance(), 1e-9);
  EXPECT_NEAR(sum.TotalMass(), 1.0, 1e-9);
}

TEST(DiscreteDistributionTest, OverlapProb) {
  auto a = DiscreteDistribution::BoundedUniform(0, 9);   // 1/10 each.
  auto b = DiscreteDistribution::BoundedUniform(5, 14);  // 1/10 each.
  // Shared support 5..9: 5 * (1/10 * 1/10).
  EXPECT_NEAR(a.OverlapProb(b), 0.05, 1e-12);
  EXPECT_NEAR(b.OverlapProb(a), 0.05, 1e-12);
  auto far = DiscreteDistribution::BoundedUniform(100, 110);
  EXPECT_DOUBLE_EQ(a.OverlapProb(far), 0.0);
}

TEST(DiscreteDistributionTest, OverlapWithSelfIsCollisionProbability) {
  auto d = DiscreteDistribution::FromMasses(0, {0.5, 0.3, 0.2});
  EXPECT_NEAR(d.OverlapProb(d), 0.25 + 0.09 + 0.04, 1e-12);
}

TEST(DiscreteDistributionTest, SampleFollowsDistribution) {
  auto d = DiscreteDistribution::FromMasses(0, {0.7, 0.0, 0.3});
  Rng rng(42);
  int counts[3] = {0, 0, 0};
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    Value v = d.Sample(rng);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 2);
    ++counts[v];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.7, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.3, 0.02);
}

TEST(DiscreteDistributionTest, SampleIsDeterministicPerSeed) {
  auto d = DiscreteDistribution::BoundedUniform(0, 1000);
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.Sample(a), d.Sample(b));
}

}  // namespace
}  // namespace sjoin
