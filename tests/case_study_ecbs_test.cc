#include "sjoin/core/case_study_ecbs.h"

#include <gtest/gtest.h>

#include "sjoin/core/dominance.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace {

TEST(OfflineCachingEcbTest, SingleStep) {
  OfflineCachingEcb ecb(3);
  EXPECT_DOUBLE_EQ(ecb.At(1), 0.0);
  EXPECT_DOUBLE_EQ(ecb.At(2), 0.0);
  EXPECT_DOUBLE_EQ(ecb.At(3), 1.0);
  EXPECT_DOUBLE_EQ(ecb.At(100), 1.0);
}

TEST(OfflineCachingEcbTest, NeverReferencedIsZero) {
  OfflineCachingEcb ecb(0);
  EXPECT_DOUBLE_EQ(ecb.At(1), 0.0);
  EXPECT_DOUBLE_EQ(ecb.At(1000), 0.0);
}

TEST(OfflineCachingEcbTest, MatchesGenericTabulation) {
  OfflineProcess reference({9, 8, 7, 5, 6});
  StreamHistory history({9});
  auto generic = MakeCachingEcb(reference, history, 0, 5, 4);
  OfflineCachingEcb closed(3);  // Value 5 next referenced at t = 3.
  for (Time dt = 1; dt <= 4; ++dt) {
    EXPECT_DOUBLE_EQ(closed.At(dt), generic.At(dt)) << dt;
  }
}

TEST(OfflineJoiningEcbTest, StepPerOccurrence) {
  OfflineJoiningEcb ecb({2, 5, 6});
  EXPECT_DOUBLE_EQ(ecb.At(1), 0.0);
  EXPECT_DOUBLE_EQ(ecb.At(2), 1.0);
  EXPECT_DOUBLE_EQ(ecb.At(4), 1.0);
  EXPECT_DOUBLE_EQ(ecb.At(5), 2.0);
  EXPECT_DOUBLE_EQ(ecb.At(6), 3.0);
  EXPECT_DOUBLE_EQ(ecb.At(99), 3.0);
}

TEST(OfflineJoiningEcbTest, MatchesGenericTabulation) {
  OfflineProcess partner({0, 7, 0, 7, 7});
  StreamHistory history({0});
  auto generic = MakeJoiningEcb(partner, history, 0, 7, 4);
  OfflineJoiningEcb closed({1, 3, 4});
  for (Time dt = 1; dt <= 4; ++dt) {
    EXPECT_DOUBLE_EQ(closed.At(dt), generic.At(dt)) << dt;
  }
}

TEST(StationaryEcbsTest, MatchGenericTabulation) {
  auto dist = DiscreteDistribution::FromMasses(0, {0.25, 0.75});
  StationaryProcess process(dist);
  StreamHistory history({0});
  auto generic_join = MakeJoiningEcb(process, history, 5, 1, 30);
  auto generic_cache = MakeCachingEcb(process, history, 5, 1, 30);
  StationaryJoiningEcb closed_join(0.75);
  StationaryCachingEcb closed_cache(0.75);
  for (Time dt = 1; dt <= 30; ++dt) {
    EXPECT_NEAR(closed_join.At(dt), generic_join.At(dt), 1e-12);
    EXPECT_NEAR(closed_cache.At(dt), generic_cache.At(dt), 1e-12);
  }
}

TEST(TrendUniformJoiningEcbTest, MatchesGenericForAllCategories) {
  // Partner: trend f(t) = t, uniform noise on [-4, 4].
  constexpr Value kW = 4;
  constexpr Time kT0 = 200;
  LinearTrendProcess partner(1.0, 0.0,
                             DiscreteDistribution::BoundedUniform(-kW, kW));
  StreamHistory empty;
  // Offsets spanning missed / active / upcoming categories.
  for (Value offset : {-7, -4, -1, 0, 2, 4, 5, 7, 9, 15}) {
    Value v = kT0 + offset;
    auto generic = MakeJoiningEcb(partner, empty, kT0, v, 25);
    TrendUniformJoiningEcb closed(offset, kW);
    for (Time dt = 1; dt <= 25; ++dt) {
      EXPECT_NEAR(closed.At(dt), generic.At(dt), 1e-12)
          << "offset=" << offset << " dt=" << dt;
    }
  }
}

TEST(TrendUniformJoiningEcbTest, CategoryDominanceStructure) {
  constexpr Value kW = 4;
  // Within the active category, larger offset dominates.
  TrendUniformJoiningEcb behind(-2, kW);
  TrendUniformJoiningEcb center(1, kW);
  EXPECT_TRUE(MeansDominates(CompareEcb(center, behind, 30)));
  // Active vs upcoming cross.
  TrendUniformJoiningEcb active(2, kW);
  TrendUniformJoiningEcb upcoming(8, kW);
  EXPECT_EQ(CompareEcb(active, upcoming, 30), Dominance::kIncomparable);
}

}  // namespace
}  // namespace sjoin
