#include "sjoin/core/heeb_caching_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/core/precompute.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

TEST(HeebCachingPolicyTest, TimeIncrementalMatchesDirect) {
  StationaryProcess reference(
      DiscreteDistribution::FromMasses(0, {0.4, 0.3, 0.2, 0.05, 0.05}));
  Rng rng(31);
  auto refs = SampleRealization(reference, 400, rng);

  HeebCachingPolicy::Options options;
  options.alpha = 6.0;
  options.horizon = 250;

  options.mode = HeebCachingPolicy::Mode::kDirect;
  HeebCachingPolicy direct(&reference, options);
  options.mode = HeebCachingPolicy::Mode::kTimeIncremental;
  HeebCachingPolicy incremental(&reference, options);

  CacheSimulator sim({.capacity = 2, .warmup = 0});
  EXPECT_EQ(sim.Run(refs, direct).hits, sim.Run(refs, incremental).hits);
}

TEST(HeebCachingPolicyTest, StationaryRanksLikeA0) {
  // Section 5.2: optimal to discard the lowest reference probability.
  StationaryProcess reference(
      DiscreteDistribution::FromMasses(0, {0.5, 0.3, 0.2}));
  HeebCachingPolicy::Options options;
  options.alpha = 10.0;
  HeebCachingPolicy policy(&reference, options);

  StreamHistory history({0});
  std::vector<Value> cached = {1, 2};
  CachingContext ctx;
  ctx.now = 0;
  ctx.capacity = 2;
  ctx.cached = &cached;
  ctx.referenced = 0;
  ctx.hit = false;
  ctx.history = &history;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 2u);
  // Keep 0 (p=.5) and 1 (p=.3); discard 2 (p=.2).
  EXPECT_TRUE((retained[0] == 0 && retained[1] == 1) ||
              (retained[0] == 1 && retained[1] == 0));
}

TEST(HeebCachingPolicyTest, OfflineBehavesLikeLfd) {
  // Section 5.1: with deterministic futures HEEB reproduces LFD decisions,
  // hence the same hit count.
  OfflineProcess reference(
      {1, 2, 3, 1, 2, 1, 3, 2, 1, 3, 3, 2, 1, 2, 3, 1, 1, 2});
  const auto& seq = reference.sequence();

  HeebCachingPolicy::Options options;
  options.mode = HeebCachingPolicy::Mode::kDirect;
  options.alpha = 6.0;
  options.horizon = 30;
  HeebCachingPolicy heeb(&reference, options);
  LfdCachingPolicy lfd(seq);

  CacheSimulator sim({.capacity = 2, .warmup = 0});
  EXPECT_EQ(sim.Run(seq, heeb).hits, sim.Run(seq, lfd).hits);
}

TEST(HeebCachingPolicyTest, WalkTableAgreesWithEvaluatorFromDp) {
  RandomWalkProcess reference(
      DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  Rng rng(32);
  auto refs = SampleRealization(reference, 250, rng);

  HeebCachingPolicy::Options table_options;
  table_options.mode = HeebCachingPolicy::Mode::kWalkTable;
  table_options.alpha = 8.0;
  table_options.horizon = 40;
  table_options.walk_max_offset = 30;
  HeebCachingPolicy table_policy(&reference, table_options);

  // Equivalent evaluator built from the same DP table.
  ExpLifetime lifetime(8.0);
  OffsetTable dp = PrecomputeWalkCachingHeeb(reference, lifetime, 40, 30);
  HeebCachingPolicy::Options eval_options;
  eval_options.mode = HeebCachingPolicy::Mode::kEvaluator;
  eval_options.alpha = 8.0;
  eval_options.evaluator = [&dp](Value v, Value last) {
    return dp.At(v - last);
  };
  HeebCachingPolicy eval_policy(nullptr, eval_options);

  CacheSimulator sim({.capacity = 4, .warmup = 0});
  EXPECT_EQ(sim.Run(refs, table_policy).hits,
            sim.Run(refs, eval_policy).hits);
}

TEST(HeebCachingPolicyTest, ZeroDriftWalkRanksByDistance) {
  // Section 5.5: zero drift + symmetric unimodal steps => rank candidates
  // by |v - current|; HEEB must agree with this optimal rule.
  RandomWalkProcess reference(
      DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  HeebCachingPolicy::Options options;
  options.mode = HeebCachingPolicy::Mode::kWalkTable;
  options.alpha = 10.0;
  options.horizon = 60;
  options.walk_max_offset = 40;
  HeebCachingPolicy policy(&reference, options);

  StreamHistory history({0, 1, 0});
  std::vector<Value> cached = {2, -1, 5, -8};
  CachingContext ctx;
  ctx.now = 2;
  ctx.capacity = 3;
  ctx.cached = &cached;
  ctx.referenced = 0;
  ctx.hit = false;
  ctx.history = &history;  // Current position 0.
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 3u);
  // Keep the three closest to 0: {0, -1, 2}; discard 5 and -8.
  for (Value v : retained) {
    EXPECT_TRUE(v == 0 || v == -1 || v == 2) << v;
  }
}

TEST(HeebCachingPolicyTest, Ar1SurfacePolicyBeatsLfuOnWanderingStream) {
  // An AR(1) with slow mean reversion has locality that frequency-based
  // policies miss.
  Ar1Process reference(0.0, 0.95, 3.0, 0);
  Rng rng(33);
  auto refs = SampleRealization(reference, 1500, rng);

  ExpLifetime lifetime(20.0);
  HeebSurfaceTable surface = PrecomputeAr1CachingSurface(
      reference, lifetime, /*horizon=*/80, /*v_min=*/-80, /*v_max=*/80,
      /*x_min=*/-80, /*x_max=*/80, /*x_step=*/8, /*paths=*/300, /*seed=*/7);

  HeebCachingPolicy::Options options;
  options.mode = HeebCachingPolicy::Mode::kEvaluator;
  options.alpha = 20.0;
  options.evaluator = [&surface](Value v, Value last) {
    return surface.At(v, last);
  };
  HeebCachingPolicy heeb(nullptr, options);
  LfuCachingPolicy lfu;

  CacheSimulator sim({.capacity = 20, .warmup = 80});
  auto heeb_result = sim.Run(refs, heeb);
  auto lfu_result = sim.Run(refs, lfu);
  EXPECT_GT(heeb_result.counted_hits, lfu_result.counted_hits);
}

}  // namespace
}  // namespace sjoin
