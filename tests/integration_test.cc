// End-to-end experiments at reduced scale: the qualitative shapes from the
// paper's evaluation (Section 6) must hold.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/seasonal_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

struct TowerConfig {
  // TOWER (Section 6.1): linear trend speed 1, R lags S by one step, noise
  // bounds [-10,10] and [-15,15], normal sd 1 and 2.
  TowerConfig()
      : r(1.0, -1.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 1.0, -10,
                                                           10)),
        s(1.0, 0.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -15,
                                                           15)) {}
  LinearTrendProcess r;
  LinearTrendProcess s;
};

class TowerIntegrationTest : public ::testing::Test {
 protected:
  static constexpr Time kLen = 600;
  static constexpr std::size_t kCache = 10;
  static constexpr int kRuns = 3;

  std::int64_t Total(ReplacementPolicy& policy, std::uint64_t seed) const {
    TowerConfig config;
    Rng rng(seed);
    JoinSimulator sim({.capacity = kCache,
                       .warmup = static_cast<Time>(4 * kCache)});
    std::int64_t total = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto pair = SampleStreamPair(config.r, config.s, kLen, rng);
      total += sim.Run(pair.r, pair.s, policy).counted_results;
    }
    return total;
  }

  std::int64_t OptTotal(std::uint64_t seed) const {
    TowerConfig config;
    Rng rng(seed);
    JoinSimulator sim({.capacity = kCache,
                       .warmup = static_cast<Time>(4 * kCache)});
    std::int64_t total = 0;
    for (int run = 0; run < kRuns; ++run) {
      auto pair = SampleStreamPair(config.r, config.s, kLen, rng);
      OptOfflinePolicy opt(pair.r, pair.s, kCache);
      total += sim.Run(pair.r, pair.s, opt).counted_results;
    }
    return total;
  }
};

TEST_F(TowerIntegrationTest, HeebBeatsRandProbAndLife) {
  TowerConfig config;
  HeebJoinPolicy::Options options;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
  HeebJoinPolicy heeb(&config.r, &config.s, options);
  RandomPolicy rand(9, Time{25});
  ProbPolicy prob(Time{25});
  LifePolicy life(25);

  std::int64_t heeb_total = Total(heeb, 1000);
  EXPECT_GT(heeb_total, Total(rand, 1000));
  EXPECT_GT(heeb_total, Total(prob, 1000));
  EXPECT_GT(heeb_total, Total(life, 1000));
}

TEST_F(TowerIntegrationTest, OptOfflineUpperBoundsEveryOnlinePolicy) {
  TowerConfig config;
  std::int64_t opt_total = OptTotal(2000);
  HeebJoinPolicy::Options options;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  HeebJoinPolicy heeb(&config.r, &config.s, options);
  RandomPolicy rand(10, Time{25});
  EXPECT_GE(opt_total, Total(heeb, 2000));
  EXPECT_GE(opt_total, Total(rand, 2000));
}

TEST_F(TowerIntegrationTest, MoreMemoryNeverHurtsMuch) {
  // Figures 9-12: performance grows with cache size. Allow tiny noise by
  // comparing small vs large caches.
  TowerConfig config;
  Rng rng(3000);
  auto pair = SampleStreamPair(config.r, config.s, kLen, rng);
  HeebJoinPolicy::Options options;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  HeebJoinPolicy heeb(&config.r, &config.s, options);

  JoinSimulator small({.capacity = 2, .warmup = 40});
  JoinSimulator large({.capacity = 30, .warmup = 40});
  auto small_result = small.Run(pair.r, pair.s, heeb);
  auto large_result = large.Run(pair.r, pair.s, heeb);
  EXPECT_GT(large_result.counted_results, small_result.counted_results);
}

TEST(MemoryAllocationTest, HeebGivesLessCacheToLaggingStream) {
  // Figure 14: when R lags S, HEEB allocates less memory to R tuples.
  auto noise = [] {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -10,
                                                            10);
  };
  LinearTrendProcess r_lagged(1.0, -4.0, noise());
  LinearTrendProcess s(1.0, 0.0, noise());

  HeebJoinPolicy::Options options;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(10.0);
  HeebJoinPolicy heeb(&r_lagged, &s, options);

  Rng rng(4000);
  auto pair = SampleStreamPair(r_lagged, s, 400, rng);
  JoinSimulator sim({.capacity = 10,
                     .warmup = 40,
                     .window = std::nullopt,
                     .track_cache_composition = true});
  auto result = sim.Run(pair.r, pair.s, heeb);
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t t = 100; t < result.r_fraction_by_time.size(); ++t) {
    sum += result.r_fraction_by_time[t];
    ++count;
  }
  double mean_fraction = sum / static_cast<double>(count);
  // A lagging R stream's tuples are mostly behind S's window: under half
  // the cache goes to R.
  EXPECT_LT(mean_fraction, 0.45);
}

TEST(SeasonalIntegrationTest, HeebHandlesNonMonotoneTrends) {
  // The generic framework needs no monotonicity: two seasonal streams a
  // quarter period apart. PROB's history frequencies are diluted over the
  // whole cycle; HEEB predicts where the windows will overlap.
  auto noise = [] {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -8,
                                                            8);
  };
  SeasonalProcess r(100.0, 25.0, 80.0, 0.0, noise());
  SeasonalProcess s(100.0, 25.0, 80.0, 0.4, noise());
  Rng rng(6000);
  std::int64_t heeb_total = 0;
  std::int64_t prob_total = 0;
  std::int64_t rand_total = 0;
  JoinSimulator sim({.capacity = 8, .warmup = 40});
  for (int run = 0; run < 3; ++run) {
    auto pair = SampleStreamPair(r, s, 600, rng);
    HeebJoinPolicy::Options options;
    options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
    options.alpha = ExpLifetime::AlphaForAverageLifetime(10.0);
    options.horizon = 120;
    HeebJoinPolicy heeb(&r, &s, options);
    ProbPolicy prob;
    RandomPolicy rand(static_cast<std::uint64_t>(run));
    heeb_total += sim.Run(pair.r, pair.s, heeb).counted_results;
    prob_total += sim.Run(pair.r, pair.s, prob).counted_results;
    rand_total += sim.Run(pair.r, pair.s, rand).counted_results;
  }
  EXPECT_GT(heeb_total, prob_total);
  EXPECT_GT(heeb_total, rand_total);
}

TEST(FlowExpectIntegrationTest, ReasonableLookaheadBeatsRandom) {
  TowerConfig config;
  Rng rng(5000);
  auto pair = SampleStreamPair(config.r, config.s, 150, rng);
  JoinSimulator sim({.capacity = 5, .warmup = 20});

  FlowExpectPolicy flow_expect(&config.r, &config.s, {.lookahead = 6});
  RandomPolicy rand(11, Time{25});
  auto fe = sim.Run(pair.r, pair.s, flow_expect);
  auto rd = sim.Run(pair.r, pair.s, rand);
  EXPECT_GT(fe.counted_results, rd.counted_results);
}

}  // namespace
}  // namespace sjoin
