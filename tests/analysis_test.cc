#include <gtest/gtest.h>

#include <cmath>

#include "sjoin/analysis/ar1_fit.h"
#include "sjoin/analysis/melbourne.h"
#include "sjoin/analysis/summary_stats.h"
#include "sjoin/common/rng.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

TEST(Ar1FitTest, RecoversParametersFromSyntheticSeries) {
  Ar1Process process(5.0, 0.7, 2.0, 17);
  Rng rng(41);
  auto series = SampleRealization(process, 8000, rng);
  auto fit = FitAr1(series);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->phi1, 0.7, 0.03);
  EXPECT_NEAR(fit->phi0, 5.0, 0.6);
  // Discretization to integers adds ~1/12 variance.
  EXPECT_NEAR(fit->sigma, std::sqrt(4.0 + 1.0 / 12.0), 0.1);
}

TEST(Ar1FitTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitAr1(std::vector<double>{1.0, 2.0}).has_value());
  EXPECT_FALSE(
      FitAr1(std::vector<double>{3.0, 3.0, 3.0, 3.0}).has_value());
}

TEST(Ar1FitTest, ExactLineIsFitPerfectly) {
  // X_t = 1 + 0.5 X_{t-1} deterministically.
  std::vector<double> series = {10.0};
  for (int i = 0; i < 20; ++i) {
    series.push_back(1.0 + 0.5 * series.back());
  }
  auto fit = FitAr1(series);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->phi1, 0.5, 1e-9);
  EXPECT_NEAR(fit->phi0, 1.0, 1e-9);
  EXPECT_NEAR(fit->sigma, 0.0, 1e-9);
}

TEST(MelbourneTest, FitLandsNearThePaperModel) {
  // The paper: X_t = 0.72 X_{t-1} + 5.59 + Y_t, sd(Y) = 4.22 (Celsius).
  auto series = SyntheticMelbourneDeciCelsius(3650, 2005);
  std::vector<double> celsius;
  celsius.reserve(series.size());
  for (Value v : series) celsius.push_back(static_cast<double>(v) / 10.0);
  auto fit = FitAr1(celsius);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->phi1, 0.72, 0.08);
  EXPECT_NEAR(fit->phi0 / (1.0 - fit->phi1), 20.0, 1.5);  // Mean level.
  EXPECT_NEAR(fit->sigma, 4.22, 0.6);
}

TEST(MelbourneTest, DeterministicInSeed) {
  auto a = SyntheticMelbourneDeciCelsius(100, 7);
  auto b = SyntheticMelbourneDeciCelsius(100, 7);
  EXPECT_EQ(a, b);
  auto c = SyntheticMelbourneDeciCelsius(100, 8);
  EXPECT_NE(a, c);
}

TEST(MelbourneTest, ValuesAreInPlausibleCelsiusRange) {
  auto series = SyntheticMelbourneDeciCelsius(3650, 1);
  for (Value v : series) {
    EXPECT_GT(v, -150);  // > -15 C.
    EXPECT_LT(v, 550);   // < 55 C.
  }
}

TEST(AutocorrelationTest, WhiteNoiseNearZeroLagOne) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.StandardNormal());
  EXPECT_NEAR(Autocorrelation(xs, 1), 0.0, 0.05);
  EXPECT_NEAR(Autocorrelation(xs, 0), 1.0, 1e-12);
}

TEST(AutocorrelationTest, Ar1HasGeometricAcf) {
  Ar1Process process(0.0, 0.8, 1.0, 0);
  Rng rng(4);
  auto series = SampleRealization(process, 20000, rng);
  std::vector<double> xs;
  for (Value v : series) xs.push_back(static_cast<double>(v));
  double rho1 = Autocorrelation(xs, 1);
  double rho2 = Autocorrelation(xs, 2);
  // Discretization attenuates slightly; shape should still be geometric.
  EXPECT_NEAR(rho2, rho1 * rho1, 0.05);
}

TEST(SummarizeTest, BasicStats) {
  auto s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  auto empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace sjoin
