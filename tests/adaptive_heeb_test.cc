#include "sjoin/core/adaptive_heeb_policy.h"

#include <gtest/gtest.h>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

struct TrendPair {
  TrendPair()
      : r(1.0, -1.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 2.0, -10, 10)),
        s(1.0, 0.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 3.0, -15,
                                                           15)) {}
  LinearTrendProcess r;
  LinearTrendProcess s;
};

TEST(AdaptiveHeebTest, AlphaConvergesTowardObservedLifetime) {
  TrendPair config;
  AdaptiveHeebJoinPolicy::Options options;
  options.initial_lifetime = 60.0;  // Deliberately far too long.
  AdaptiveHeebJoinPolicy policy(&config.r, &config.s, options);

  Rng rng(71);
  auto pair = SampleStreamPair(config.r, config.s, 800, rng);
  JoinSimulator sim({.capacity = 8, .warmup = 0});
  sim.Run(pair.r, pair.s, policy);

  // Tuples in these trend configurations live tens of steps at most; the
  // estimate must have dropped far below the bad initial guess.
  EXPECT_LT(policy.lifetime_estimate(), 35.0);
  EXPECT_GT(policy.lifetime_estimate(), 1.5);
}

TEST(AdaptiveHeebTest, ResetRestoresInitialState) {
  TrendPair config;
  AdaptiveHeebJoinPolicy::Options options;
  options.initial_lifetime = 40.0;
  AdaptiveHeebJoinPolicy policy(&config.r, &config.s, options);
  Rng rng(72);
  auto pair = SampleStreamPair(config.r, config.s, 300, rng);
  JoinSimulator sim({.capacity = 6, .warmup = 0});
  auto first = sim.Run(pair.r, pair.s, policy);
  auto second = sim.Run(pair.r, pair.s, policy);  // Run() resets.
  EXPECT_EQ(first.total_results, second.total_results);
}

TEST(AdaptiveHeebTest, CompetitiveWithWellTunedFixedAlpha) {
  TrendPair config;
  Rng rng(73);
  std::int64_t adaptive_total = 0;
  std::int64_t tuned_total = 0;
  std::int64_t mistuned_total = 0;
  JoinSimulator sim({.capacity = 10, .warmup = 40});
  for (int run = 0; run < 3; ++run) {
    auto pair = SampleStreamPair(config.r, config.s, 700, rng);

    AdaptiveHeebJoinPolicy::Options adaptive_options;
    adaptive_options.initial_lifetime = 100.0;  // Bad starting guess.
    AdaptiveHeebJoinPolicy adaptive(&config.r, &config.s, adaptive_options);
    adaptive_total += sim.Run(pair.r, pair.s, adaptive).counted_results;

    HeebJoinPolicy::Options tuned_options;
    tuned_options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
    tuned_options.horizon = 150;
    HeebJoinPolicy tuned(&config.r, &config.s, tuned_options);
    tuned_total += sim.Run(pair.r, pair.s, tuned).counted_results;

    HeebJoinPolicy::Options mistuned_options;
    mistuned_options.alpha = ExpLifetime::AlphaForAverageLifetime(500.0);
    mistuned_options.horizon = 150;
    HeebJoinPolicy mistuned(&config.r, &config.s, mistuned_options);
    mistuned_total += sim.Run(pair.r, pair.s, mistuned).counted_results;
  }
  // Adaptive must recover most of the well-tuned performance despite the
  // bad initial guess (within 10%), and beat random.
  EXPECT_GT(adaptive_total, tuned_total * 9 / 10);
  RandomPolicy rand(3, Time{25});
  Rng rng2(73);
  std::int64_t rand_total = 0;
  for (int run = 0; run < 3; ++run) {
    auto pair = SampleStreamPair(config.r, config.s, 700, rng2);
    rand_total += sim.Run(pair.r, pair.s, rand).counted_results;
  }
  EXPECT_GT(adaptive_total, rand_total);
}

}  // namespace
}  // namespace sjoin
