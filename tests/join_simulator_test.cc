#include "sjoin/engine/join_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sjoin/engine/scored_policy.h"

namespace sjoin {
namespace {

// Keeps the most recently arrived tuples.
class KeepNewestPolicy final : public ScoredPolicy {
 public:
  const char* name() const override { return "KEEP-NEWEST"; }

 protected:
  double Score(const Tuple& tuple, const PolicyContext& ctx) override {
    (void)ctx;
    return static_cast<double>(tuple.arrival);
  }
};

// Keeps the oldest tuples (never admits new arrivals once full).
class KeepOldestPolicy final : public ScoredPolicy {
 public:
  const char* name() const override { return "KEEP-OLDEST"; }

 protected:
  double Score(const Tuple& tuple, const PolicyContext& ctx) override {
    (void)ctx;
    return -static_cast<double>(tuple.arrival);
  }
};

TEST(JoinSimulatorTest, CountsJoinAgainstPreviousCache) {
  // R: 1 2 3 ; S: 9 1 1. S tuple at t=1 and t=2 has value 1, matching the
  // cached R tuple from t=0.
  JoinSimulator sim({.capacity = 4, .warmup = 0});
  KeepNewestPolicy policy;
  auto result = sim.Run({1, 2, 3}, {9, 1, 1}, policy);
  EXPECT_EQ(result.total_results, 2);
  EXPECT_EQ(result.counted_results, 2);
}

TEST(JoinSimulatorTest, SameTimeArrivalsDoNotCount) {
  JoinSimulator sim({.capacity = 4, .warmup = 0});
  KeepNewestPolicy policy;
  // Matching values only ever co-arrive.
  auto result = sim.Run({5, 6, 7}, {5, 6, 7}, policy);
  EXPECT_EQ(result.total_results, 0);
}

TEST(JoinSimulatorTest, DuplicateCachedTuplesEachProduceAResult) {
  JoinSimulator sim({.capacity = 4, .warmup = 0});
  KeepNewestPolicy policy;
  // Two R tuples with value 1 cached at t=0,1; S value 1 arrives at t=2.
  auto result = sim.Run({1, 1, 9}, {8, 8, 1}, policy);
  EXPECT_EQ(result.total_results, 2);
}

TEST(JoinSimulatorTest, WarmupExcludesEarlyResults) {
  JoinSimulator sim({.capacity = 4, .warmup = 2});
  KeepNewestPolicy policy;
  auto result = sim.Run({1, 9, 9}, {8, 1, 1}, policy);
  EXPECT_EQ(result.total_results, 2);   // Joins at t=1 and t=2.
  EXPECT_EQ(result.counted_results, 1); // Only the join at t=2 counts.
}

TEST(JoinSimulatorTest, EvictionPreventsJoin) {
  // Capacity 2: after step 1 the cache holds the two newest tuples, so the
  // R tuple with value 1 from t=0 was evicted when S value 1 arrives late.
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  KeepNewestPolicy policy;
  auto result = sim.Run({1, 9, 9}, {8, 8, 1}, policy);
  EXPECT_EQ(result.total_results, 0);
}

TEST(JoinSimulatorTest, KeepOldestRetainsEarlyTuples) {
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  KeepOldestPolicy policy;
  // Cache keeps R(1) and S(8) from t=0 forever.
  auto result = sim.Run({1, 9, 9, 9}, {8, 1, 1, 1}, policy);
  EXPECT_EQ(result.total_results, 3);
}

TEST(JoinSimulatorTest, SlidingWindowExpiresTuples) {
  JoinSimulator sim({.capacity = 4, .warmup = 0, .window = Time{1}});
  KeepNewestPolicy policy;
  // R(1) arrives at t=0; S(1) arrives at t=2 — outside window 1.
  auto result = sim.Run({1, 9, 9}, {8, 8, 1}, policy);
  EXPECT_EQ(result.total_results, 0);
  // With window 2 it counts.
  JoinSimulator sim2({.capacity = 4, .warmup = 0, .window = Time{2}});
  auto result2 = sim2.Run({1, 9, 9}, {8, 8, 1}, policy);
  EXPECT_EQ(result2.total_results, 1);
}

TEST(JoinSimulatorTest, TracksCacheComposition) {
  JoinSimulator sim({.capacity = 2,
                     .warmup = 0,
                     .window = std::nullopt,
                     .track_cache_composition = true});
  KeepNewestPolicy policy;
  auto result = sim.Run({1, 2}, {3, 4}, policy);
  ASSERT_EQ(result.r_fraction_by_time.size(), 2u);
  // Keep-newest retains the two arrivals of the step: one R, one S.
  EXPECT_DOUBLE_EQ(result.r_fraction_by_time[0], 0.5);
  EXPECT_DOUBLE_EQ(result.r_fraction_by_time[1], 0.5);
}

TEST(JoinSimulatorTest, TupleIdConvention) {
  // A policy that records the ids it sees; verifies the 2t / 2t+1 scheme.
  class RecordingPolicy final : public ScoredPolicy {
   public:
    const char* name() const override { return "RECORDING"; }
    std::vector<Tuple> seen;

   protected:
    void BeginStep(const PolicyContext& ctx) override {
      for (const Tuple& t : *ctx.arrivals) seen.push_back(t);
    }
    double Score(const Tuple& tuple, const PolicyContext& ctx) override {
      (void)tuple;
      (void)ctx;
      return 0.0;
    }
  };
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  RecordingPolicy policy;
  sim.Run({10, 20}, {30, 40}, policy);
  ASSERT_EQ(policy.seen.size(), 4u);
  for (const Tuple& t : policy.seen) {
    EXPECT_EQ(t.id, TupleIdAt(t.side, t.arrival));
  }
}

TEST(JoinSimulatorTest, PolicySeesHistoriesIncludingNow) {
  class HistoryCheckPolicy final : public ScoredPolicy {
   public:
    const char* name() const override { return "HISTCHECK"; }

   protected:
    void BeginStep(const PolicyContext& ctx) override {
      EXPECT_EQ(ctx.history_r->size(), ctx.now + 1);
      EXPECT_EQ(ctx.history_s->size(), ctx.now + 1);
    }
    double Score(const Tuple& tuple, const PolicyContext& ctx) override {
      (void)tuple;
      (void)ctx;
      return 0.0;
    }
  };
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  HistoryCheckPolicy policy;
  sim.Run({1, 2, 3}, {4, 5, 6}, policy);
}

}  // namespace
}  // namespace sjoin
