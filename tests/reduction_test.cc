#include "sjoin/engine/reduction.h"

#include <gtest/gtest.h>

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/scored_caching_policy.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/lru_policy.h"

namespace sjoin {
namespace {

class KeepLargestPolicy final : public ScoredCachingPolicy {
 public:
  const char* name() const override { return "KEEP-LARGEST"; }

 protected:
  double Score(Value v, const CachingContext& ctx) override {
    (void)ctx;
    return static_cast<double>(v);
  }
};

TEST(CachingReductionTest, NeitherTransformedStreamContainsDuplicates) {
  // Observation (1) in Section 2: neither stream contains duplicates.
  // (Across streams, values deliberately coincide — that is what joins.)
  CachingReduction reduction({7, 8, 7, 9, 7});
  for (const std::vector<Value>* stream :
       {&reduction.r_stream(), &reduction.s_stream()}) {
    for (std::size_t i = 0; i < stream->size(); ++i) {
      for (std::size_t j = i + 1; j < stream->size(); ++j) {
        EXPECT_NE((*stream)[i], (*stream)[j]) << "duplicate encoded tuple";
      }
    }
  }
}

TEST(CachingReductionTest, PairEncodingMatchesPaper) {
  // R: a b a c a  ->  R': (a,0)(b,0)(a,1)(c,0)(a,2)
  //                   S': (a,1)(b,1)(a,2)(c,1)(a,3)
  CachingReduction reduction({1, 2, 1, 3, 1});
  EXPECT_EQ(reduction.r_stream()[0], reduction.Encode(1, 0));
  EXPECT_EQ(reduction.s_stream()[0], reduction.Encode(1, 1));
  EXPECT_EQ(reduction.r_stream()[2], reduction.Encode(1, 1));
  EXPECT_EQ(reduction.s_stream()[2], reduction.Encode(1, 2));
  EXPECT_EQ(reduction.r_stream()[4], reduction.Encode(1, 2));
  EXPECT_EQ(reduction.s_stream()[4], reduction.Encode(1, 3));
  auto [v, occurrence] = reduction.Decode(reduction.s_stream()[3]);
  EXPECT_EQ(v, 3);
  EXPECT_EQ(occurrence, 1);
}

TEST(CachingReductionTest, SupplyTupleJoinsNextReference) {
  // The S' tuple for the i-th occurrence joins exactly the (i+1)-th
  // occurrence's R' tuple.
  CachingReduction reduction({4, 4, 4});
  EXPECT_EQ(reduction.s_stream()[0], reduction.r_stream()[1]);
  EXPECT_EQ(reduction.s_stream()[1], reduction.r_stream()[2]);
}

// Theorem 1: hits under a reasonable policy equal join results of the
// reduced problem under the adapted policy.
void ExpectTheorem1Holds(const std::vector<Value>& references,
                         CachingPolicy& policy, std::size_t capacity) {
  CacheSimulator cache_sim({.capacity = capacity, .warmup = 0});
  auto cache_result = cache_sim.Run(references, policy);

  CachingReduction reduction(references);
  ReductionJoinPolicy join_policy(&reduction, &policy);
  JoinSimulator join_sim({.capacity = capacity, .warmup = 0});
  auto join_result =
      join_sim.Run(reduction.r_stream(), reduction.s_stream(), join_policy);

  EXPECT_EQ(cache_result.hits, join_result.total_results)
      << "H(C0,R,P) != J(C0,R,S,P)";
}

TEST(ReductionTheorem1Test, HoldsForKeepLargest) {
  KeepLargestPolicy policy;
  ExpectTheorem1Holds({1, 2, 1, 2, 3, 3, 1}, policy, 2);
}

TEST(ReductionTheorem1Test, HoldsForLru) {
  LruCachingPolicy policy;
  ExpectTheorem1Holds({1, 2, 1, 3, 1, 2, 2, 3, 1}, policy, 2);
}

TEST(ReductionTheorem1Test, HoldsForLfu) {
  LfuCachingPolicy policy;
  ExpectTheorem1Holds({5, 5, 6, 7, 5, 6, 6, 7, 5}, policy, 2);
}

TEST(ReductionTheorem1Test, HoldsForLfd) {
  std::vector<Value> refs = {1, 2, 3, 1, 2, 1, 3, 2, 2, 1};
  LfdCachingPolicy policy(refs);
  ExpectTheorem1Holds(refs, policy, 2);
}

TEST(ReductionTheorem1Test, HoldsOnRandomTraces) {
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Value> refs;
    Time len = rng.UniformInt(5, 60);
    for (Time t = 0; t < len; ++t) {
      refs.push_back(rng.UniformInt(0, 6));
    }
    std::size_t capacity =
        static_cast<std::size_t>(rng.UniformInt(1, 4));
    LruCachingPolicy lru;
    ExpectTheorem1Holds(refs, lru, capacity);
    LfuCachingPolicy lfu;
    ExpectTheorem1Holds(refs, lfu, capacity);
    LfdCachingPolicy lfd(refs);
    ExpectTheorem1Holds(refs, lfd, capacity);
  }
}

}  // namespace
}  // namespace sjoin
