// The ModelRepo acceptance criterion: every model artifact is built
// exactly once per distinct content key, identical requests share one
// object, and the typed wrappers hand out the same tables a direct
// Precompute* call would.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "sjoin/core/model_repo.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/core/precompute.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/discrete_distribution.h"
#include "sjoin/stochastic/random_walk_process.h"

namespace sjoin {
namespace {

RandomWalkProcess TestWalk() {
  return RandomWalkProcess(
      DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 1.5, -5, 5), 0);
}

TEST(ModelRepoTest, BuildsOncePerKeyAndSharesTheArtifact) {
  // A local repo keeps the counters independent of whatever other tests
  // pushed through Global().
  ModelRepo repo;
  const RandomWalkProcess walk = TestWalk();

  std::shared_ptr<const OffsetTable> first =
      repo.WalkJoinHeebTable(walk, 10.0, 60);
  std::shared_ptr<const OffsetTable> second =
      repo.WalkJoinHeebTable(walk, 10.0, 60);
  // Same key -> the very same object, not an equal copy.
  EXPECT_EQ(first.get(), second.get());

  // A different parameter anywhere in the key is a different artifact.
  std::shared_ptr<const OffsetTable> other_alpha =
      repo.WalkJoinHeebTable(walk, 20.0, 60);
  EXPECT_NE(first.get(), other_alpha.get());

  ModelRepo::Stats stats = repo.stats();
  EXPECT_EQ(stats.lookups, 3);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.builds, 2);
}

TEST(ModelRepoTest, BuildCountStaysOneUnderRepeatedAndConcurrentLookups) {
  ModelRepo repo;
  const std::string key = "test-offset";
  auto build = [] { return OffsetTable(-1, {0.25, 0.5, 0.25}); };

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 50; ++j) {
        std::shared_ptr<const OffsetTable> table =
            repo.OffsetTableFor(key, build);
        ASSERT_EQ(table->values().size(), 3u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(repo.BuildCount(key), 1);
  ModelRepo::Stats stats = repo.stats();
  EXPECT_EQ(stats.lookups, kThreads * 50);
  EXPECT_EQ(stats.builds, 1);
  EXPECT_EQ(stats.hits, stats.lookups - 1);
  // A key never asked for was never built.
  EXPECT_EQ(repo.BuildCount("never-requested"), 0);
}

TEST(ModelRepoTest, TypedWrappersMatchDirectPrecompute) {
  ModelRepo repo;
  const RandomWalkProcess walk = TestWalk();

  std::shared_ptr<const OffsetTable> join =
      repo.WalkJoinHeebTable(walk, 8.0, 40);
  OffsetTable direct_join = PrecomputeWalkJoinHeeb(walk, ExpLifetime(8.0), 40);
  EXPECT_EQ(join->min_offset(), direct_join.min_offset());
  EXPECT_EQ(join->values(), direct_join.values());

  std::shared_ptr<const OffsetTable> caching =
      repo.WalkCachingHeebTable(walk, 8.0, 40, 30);
  OffsetTable direct_caching =
      PrecomputeWalkCachingHeeb(walk, ExpLifetime(8.0), 40, 30);
  EXPECT_EQ(caching->min_offset(), direct_caching.min_offset());
  EXPECT_EQ(caching->values(), direct_caching.values());
}

TEST(ModelRepoTest, BicubicSharesItsSurfaceDependency) {
  ModelRepo repo;
  const Ar1Process ar1(0.0, 0.9, 2.0, 0);

  // Tiny grid / path count: this test pins sharing, not accuracy.
  std::shared_ptr<const BicubicSurface> bicubic =
      repo.Ar1CachingSurfaceBicubic(ar1, 6.0, 20, -8, 8, -8, 8, 2, 16, 99,
                                    4, 4);
  ASSERT_NE(bicubic, nullptr);
  ModelRepo::Stats after_first = repo.stats();
  // One surface build plus one bicubic build.
  EXPECT_EQ(after_first.builds, 2);

  // Asking for the exact surface now hits the entry the bicubic resolved.
  std::shared_ptr<const HeebSurfaceTable> surface =
      repo.Ar1CachingSurfaceTable(ar1, 6.0, 20, -8, 8, -8, 8, 2, 16, 99);
  ASSERT_NE(surface, nullptr);
  EXPECT_EQ(repo.stats().builds, 2);

  // A second identical bicubic request builds nothing at all.
  std::shared_ptr<const BicubicSurface> again =
      repo.Ar1CachingSurfaceBicubic(ar1, 6.0, 20, -8, 8, -8, 8, 2, 16, 99,
                                    4, 4);
  EXPECT_EQ(bicubic.get(), again.get());
  EXPECT_EQ(repo.stats().builds, 2);

  // A different compression grid shares the surface but not the bicubic.
  repo.Ar1CachingSurfaceBicubic(ar1, 6.0, 20, -8, 8, -8, 8, 2, 16, 99, 5, 5);
  EXPECT_EQ(repo.stats().builds, 3);
}

TEST(ModelRepoTest, ClearDropsEntriesButBorrowsSurvive) {
  ModelRepo repo;
  const RandomWalkProcess walk = TestWalk();
  std::shared_ptr<const OffsetTable> borrow =
      repo.WalkJoinHeebTable(walk, 10.0, 60);
  const std::vector<double> values = borrow->values();

  repo.Clear();
  EXPECT_EQ(repo.stats().builds, 0);
  // The borrow outlives the cache entry.
  EXPECT_EQ(borrow->values(), values);
  // After Clear the key rebuilds (counter reset, so no double-build trip).
  std::shared_ptr<const OffsetTable> rebuilt =
      repo.WalkJoinHeebTable(walk, 10.0, 60);
  EXPECT_NE(borrow.get(), rebuilt.get());
  EXPECT_EQ(rebuilt->values(), values);
}

TEST(ModelRepoTest, GlobalIsOneRepo) {
  EXPECT_EQ(&ModelRepo::Global(), &ModelRepo::Global());
}

}  // namespace
}  // namespace sjoin
