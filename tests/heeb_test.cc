#include "sjoin/core/heeb.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/core/dominance.h"
#include "sjoin/core/lifetime_fn.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace {

TEST(LifetimeFnTest, FixedLifetime) {
  FixedLifetime l(3);
  EXPECT_DOUBLE_EQ(l.At(1), 1.0);
  EXPECT_DOUBLE_EQ(l.At(3), 1.0);
  EXPECT_DOUBLE_EQ(l.At(4), 0.0);
}

TEST(LifetimeFnTest, ExpLifetimeDecaysAndIsBounded) {
  ExpLifetime l(5.0);
  EXPECT_NEAR(l.At(1), std::exp(-0.2), 1e-12);
  for (Time dt = 1; dt < 50; ++dt) {
    EXPECT_GT(l.At(dt), l.At(dt + 1));
    EXPECT_GE(l.At(dt), 0.0);
    EXPECT_LE(l.At(dt), 1.0);
  }
}

TEST(LifetimeFnTest, AlphaForAverageLifetimeRoundTrips) {
  double alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
  // Average lifetime predicted by L_exp: 1 / (1 - e^{-1/alpha}).
  EXPECT_NEAR(1.0 / (1.0 - std::exp(-1.0 / alpha)), 12.5, 1e-9);
}

TEST(LifetimeFnTest, WindowedLifetimeZeroesBeyondWindow) {
  ExpLifetime base(5.0);
  WindowedLifetime l(&base, 3);
  EXPECT_DOUBLE_EQ(l.At(3), base.At(3));
  EXPECT_DOUBLE_EQ(l.At(4), 0.0);
}

TEST(LifetimeFnTest, InverseLifetime) {
  InverseLifetime l;
  EXPECT_DOUBLE_EQ(l.At(1), 1.0);
  EXPECT_DOUBLE_EQ(l.At(4), 0.25);
}

TEST(HeebTest, DefinitionFromEcbMatchesJoiningForm) {
  // With B from Lemma 1, the telescoped definition equals the direct sum.
  StationaryProcess partner(DiscreteDistribution::BoundedUniform(0, 9));
  StreamHistory history({1});
  ExpLifetime lifetime(4.0);
  constexpr Time kHorizon = 60;
  auto ecb = MakeJoiningEcb(partner, history, 0, 3, kHorizon);
  double via_def = HeebFromEcb(ecb, lifetime, kHorizon);
  double via_sum = JoiningHeeb(partner, history, 0, 3, lifetime, kHorizon);
  EXPECT_NEAR(via_def, via_sum, 1e-10);
}

TEST(HeebTest, DefinitionFromEcbMatchesCachingForm) {
  StationaryProcess reference(DiscreteDistribution::BoundedUniform(0, 9));
  StreamHistory history({1});
  ExpLifetime lifetime(4.0);
  constexpr Time kHorizon = 60;
  auto ecb = MakeCachingEcb(reference, history, 0, 3, kHorizon);
  double via_def = HeebFromEcb(ecb, lifetime, kHorizon);
  double via_sum = CachingHeeb(reference, history, 0, 3, lifetime, kHorizon);
  EXPECT_NEAR(via_def, via_sum, 1e-10);
}

TEST(HeebTest, ExpHorizonBoundsTail) {
  double alpha = 7.0;
  Time horizon = ExpHorizon(alpha, 1e-9);
  // Tail sum of L_exp beyond the horizon is below ~epsilon * alpha-ish.
  double tail = std::exp(-static_cast<double>(horizon) / alpha) /
                (1.0 - std::exp(-1.0 / alpha));
  EXPECT_LT(tail, 1e-8 * alpha);
}

// Theorem 4: with admissible L, B_x dominates B_y implies H_x >= H_y
// (strict under strong dominance). Checked with randomized dominated pairs
// for every lifetime choice.
class Theorem4Test : public ::testing::TestWithParam<int> {};

TEST_P(Theorem4Test, DominanceImpliesHeebOrder) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  constexpr Time kHorizon = 30;
  for (int trial = 0; trial < 50; ++trial) {
    // Build y's per-step benefits, then x's >= y's.
    std::vector<double> bx, by;
    double cx = 0.0, cy = 0.0;
    for (Time dt = 0; dt < kHorizon; ++dt) {
      double py = rng.UniformReal() * 0.4;
      double extra = rng.UniformReal() * 0.3;
      cy += py;
      cx += py + extra;
      by.push_back(cy);
      bx.push_back(cx);
    }
    TabulatedEcb ecb_x(bx);
    TabulatedEcb ecb_y(by);
    ASSERT_TRUE(MeansDominates(CompareEcb(ecb_x, ecb_y, kHorizon)));

    FixedLifetime fixed(10);
    InfiniteLifetime inf;
    InverseLifetime inv;
    ExpLifetime exp_l(6.0);
    for (const LifetimeFn* l :
         std::initializer_list<const LifetimeFn*>{&fixed, &inf, &inv,
                                                  &exp_l}) {
      double hx = HeebFromEcb(ecb_x, *l, kHorizon);
      double hy = HeebFromEcb(ecb_y, *l, kHorizon);
      EXPECT_GE(hx, hy - 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem4Test, ::testing::Values(1, 2, 3, 4));

TEST(HeebTest, StrongDominanceGivesStrictOrder) {
  TabulatedEcb x({0.2, 0.5, 0.9});
  TabulatedEcb y({0.1, 0.3, 0.6});
  ASSERT_EQ(CompareEcb(x, y, 3), Dominance::kStrictlyDominates);
  ExpLifetime l(5.0);
  EXPECT_GT(HeebFromEcb(x, l, 3), HeebFromEcb(y, l, 3));
}

TEST(HeebTest, StationaryHeebRanksLikeProb) {
  // Section 5.2: with stationary streams, H orders tuples by p(v), the
  // PROB criterion, for any admissible L.
  StationaryProcess partner(
      DiscreteDistribution::FromMasses(0, {0.5, 0.3, 0.2}));
  StreamHistory history({0});
  ExpLifetime l(5.0);
  double h0 = JoiningHeeb(partner, history, 0, 0, l, 100);
  double h1 = JoiningHeeb(partner, history, 0, 1, l, 100);
  double h2 = JoiningHeeb(partner, history, 0, 2, l, 100);
  EXPECT_GT(h0, h1);
  EXPECT_GT(h1, h2);
}

TEST(HeebTest, OfflineCachingHeebRanksLikeLfd) {
  // Section 5.1: with a known future, H orders database tuples by next
  // reference time — Belady's LFD.
  OfflineProcess reference({9, 1, 2, 3, 1, 2});
  StreamHistory history({9});  // t0 = 0.
  ExpLifetime l(5.0);
  double h1 = CachingHeeb(reference, history, 0, 1, l, 6);  // Next at t=1.
  double h2 = CachingHeeb(reference, history, 0, 2, l, 6);  // Next at t=2.
  double h3 = CachingHeeb(reference, history, 0, 3, l, 6);  // Next at t=3.
  double h4 = CachingHeeb(reference, history, 0, 4, l, 6);  // Never.
  EXPECT_GT(h1, h2);
  EXPECT_GT(h2, h3);
  EXPECT_GT(h3, h4);
  EXPECT_DOUBLE_EQ(h4, 0.0);
}

TEST(HeebTest, FixedLifetimeEqualsEcbAtCutoff) {
  // H with L_fixed(ΔT) is exactly B(ΔT) (the table in Section 4.3).
  StationaryProcess partner(DiscreteDistribution::BoundedUniform(0, 3));
  StreamHistory history({0});
  auto ecb = MakeJoiningEcb(partner, history, 0, 1, 20);
  FixedLifetime l(7);
  EXPECT_NEAR(HeebFromEcb(ecb, l, 20), ecb.At(7), 1e-12);
}

TEST(HeebTest, InfiniteLifetimeEqualsEcbLimitForCaching) {
  // H with L_inf is lim B(Δt): the probability of ever being referenced.
  StationaryProcess reference(DiscreteDistribution::BoundedUniform(0, 1));
  StreamHistory history({0});
  InfiniteLifetime l;
  double h = CachingHeeb(reference, history, 0, 1, l, 200);
  EXPECT_NEAR(h, 1.0, 1e-12);  // p = 0.5, referenced eventually a.s.
}

}  // namespace
}  // namespace sjoin
