#include "sjoin/core/precompute.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sjoin/core/heeb.h"
#include "sjoin/stochastic/stream_history.h"

namespace sjoin {
namespace {

TEST(OffsetTableTest, ZeroOutsideRange) {
  OffsetTable table(-2, {1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(table.At(-3), 0.0);
  EXPECT_DOUBLE_EQ(table.At(-2), 1.0);
  EXPECT_DOUBLE_EQ(table.At(2), 5.0);
  EXPECT_DOUBLE_EQ(table.At(3), 0.0);
}

TEST(WalkJoinTableTest, MatchesDirectJoiningHeeb) {
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.5, 1.0),
                         0);
  ExpLifetime lifetime(6.0);
  constexpr Time kHorizon = 40;
  OffsetTable table = PrecomputeWalkJoinHeeb(walk, lifetime, kHorizon);

  // Direct: H for a tuple with value v when the walk's last value is x
  // equals table(v - x).
  StreamHistory history({100});
  for (Value v : {95, 98, 100, 101, 104, 110}) {
    double direct = JoiningHeeb(walk, history, 0, v, lifetime, kHorizon);
    EXPECT_NEAR(direct, table.At(v - 100), 1e-9) << "v=" << v;
  }
}

TEST(WalkJoinTableTest, DriftShiftsThePeak) {
  RandomWalkProcess no_drift(
      DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  RandomWalkProcess drift(DiscreteDistribution::DiscretizedNormal(2.0, 1.0),
                          0);
  ExpLifetime lifetime(10.0);
  OffsetTable t0 = PrecomputeWalkJoinHeeb(no_drift, lifetime, 30);
  OffsetTable t2 = PrecomputeWalkJoinHeeb(drift, lifetime, 30);
  // Without drift the best offset is at 0-ish; with positive drift the
  // table should favor positive offsets.
  EXPECT_GT(t2.At(4), t2.At(-4));
  EXPECT_NEAR(t0.At(3), t0.At(-3), 1e-9);
}

TEST(WalkCachingTableTest, FirstPassageMassNeverExceedsOne) {
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.0, 1.0),
                         0);
  InfiniteLifetime lifetime;  // H becomes the hit probability.
  OffsetTable table = PrecomputeWalkCachingHeeb(walk, lifetime, 60, 10);
  for (Value d = -10; d <= 10; ++d) {
    EXPECT_GE(table.At(d), 0.0);
    EXPECT_LE(table.At(d), 1.0 + 1e-9);
  }
}

TEST(WalkCachingTableTest, ZeroDriftIsSymmetricAndUnimodal) {
  // Section 5.5: zero drift + symmetric unimodal steps => candidates rank
  // by |offset|.
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.0, 1.0),
                         0);
  ExpLifetime lifetime(10.0);
  OffsetTable table = PrecomputeWalkCachingHeeb(walk, lifetime, 60, 12);
  for (Value d = 1; d <= 12; ++d) {
    EXPECT_NEAR(table.At(d), table.At(-d), 1e-9) << d;
  }
  for (Value d = 1; d < 12; ++d) {
    EXPECT_GT(table.At(d), table.At(d + 1)) << d;
  }
}

TEST(WalkCachingTableTest, MatchesMonteCarloFirstPassage) {
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.0, 1.0),
                         0);
  ExpLifetime lifetime(8.0);
  constexpr Time kHorizon = 40;
  OffsetTable dp = PrecomputeWalkCachingHeeb(walk, lifetime, kHorizon, 8);

  Rng rng(71);
  StepSampler sampler = MakeWalkStepSampler(walk);
  auto mc = MonteCarloCachingHeebColumn(sampler, 0, -8, 8, lifetime,
                                        kHorizon, 60000, rng);
  for (Value d = -8; d <= 8; ++d) {
    EXPECT_NEAR(mc[static_cast<std::size_t>(d + 8)], dp.At(d), 0.01)
        << "offset " << d;
  }
}

TEST(SurfaceTableTest, InterpolatesBetweenColumns) {
  // Two columns over v in [0, 2], x columns at 0 and 10.
  HeebSurfaceTable table(0, 2, 0, 10,
                         {{1.0, 2.0, 3.0}, {3.0, 4.0, 5.0}});
  EXPECT_DOUBLE_EQ(table.At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(table.At(0, 10), 3.0);
  EXPECT_DOUBLE_EQ(table.At(0, 5), 2.0);  // Linear midpoint.
  EXPECT_DOUBLE_EQ(table.At(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(table.At(99, 0), 0.0);  // Outside v range.
  EXPECT_DOUBLE_EQ(table.At(0, -100), 1.0);  // Clamped in x.
  EXPECT_DOUBLE_EQ(table.At(0, 100), 3.0);
}

TEST(Ar1SurfaceTest, PeaksNearTheDiagonal) {
  // An AR(1) starting at x is most likely to first-reference values close
  // to where it is headed.
  Ar1Process process(0.0, 0.9, 2.0, 0);
  ExpLifetime lifetime(10.0);
  HeebSurfaceTable surface = PrecomputeAr1CachingSurface(
      process, lifetime, /*horizon=*/50, /*v_min=*/-30, /*v_max=*/30,
      /*x_min=*/-20, /*x_max=*/20, /*x_step=*/10, /*paths=*/2000,
      /*seed=*/5);
  // At column x=20, nearby value 18 should beat the far value -20.
  EXPECT_GT(surface.At(18, 20), surface.At(-20, 20));
  // Symmetric situation at x=-20.
  EXPECT_GT(surface.At(-18, -20), surface.At(20, -20));
}

TEST(Ar1SurfaceTest, DeterministicInSeed) {
  Ar1Process process(0.0, 0.8, 1.5, 0);
  ExpLifetime lifetime(6.0);
  auto a = PrecomputeAr1CachingSurface(process, lifetime, 30, -10, 10, -10,
                                       10, 5, 200, 99);
  auto b = PrecomputeAr1CachingSurface(process, lifetime, 30, -10, 10, -10,
                                       10, 5, 200, 99);
  for (Value v = -10; v <= 10; ++v) {
    EXPECT_DOUBLE_EQ(a.At(v, 3), b.At(v, 3));
  }
}

TEST(Ar1SurfaceTest, BicubicApproximationIsClose) {
  Ar1Process process(0.0, 0.9, 2.0, 0);
  ExpLifetime lifetime(10.0);
  HeebSurfaceTable surface = PrecomputeAr1CachingSurface(
      process, lifetime, 50, -30, 30, -20, 20, 5, 3000, 11);
  // A denser-than-paper control grid keeps the check tight while still
  // compressing the table.
  BicubicSurface approx = ApproximateSurfaceBicubic(surface, 13, 9);
  double worst = 0.0;
  for (Value v = -30; v <= 30; v += 3) {
    for (Value x = -20; x <= 20; x += 4) {
      double err = std::fabs(approx.At(static_cast<double>(v),
                                       static_cast<double>(x)) -
                             surface.At(v, x));
      worst = std::max(worst, err);
    }
  }
  // Surface values live in [0, ~0.9]; the approximation must track it.
  EXPECT_LT(worst, 0.08);
}

TEST(Ar1StepSamplerTest, MatchesConditionalMoments) {
  Ar1Process process(5.0, 0.5, 2.0, 0);
  StepSampler sampler = MakeAr1StepSampler(process);
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    double v = static_cast<double>(sampler(10, rng));
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kDraws;
  double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);  // 5 + 0.5*10.
  EXPECT_NEAR(var, 4.0 + 1.0 / 12.0, 0.15);  // Rounding adds ~1/12.
}

}  // namespace
}  // namespace sjoin
