#include "sjoin/common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <optional>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace sjoin {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { ++counter; });
    }
    // Futures intentionally dropped: the destructor must still run all.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::thread::id task_thread;
  std::future<void> future =
      pool.Submit([&task_thread] { task_thread = std::this_thread::get_id(); });
  // Inline execution: by the time Submit returns, the task has run, on
  // this very thread. This is what makes --threads=1 the serial baseline.
  EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(task_thread, std::this_thread::get_id());
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  std::future<void> future =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);

  // The worker that ran the throwing task must survive for later tasks.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ParallelForTest, VisitsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(pool, 0, kN, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, HonorsNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(20);
  ParallelFor(pool, 7, 13, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), (i >= 7 && i < 13) ? 1 : 0) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, WorkerCanSubmitNestedTasks) {
  // A task enqueues follow-up work on its own pool. With one other worker
  // free the nested task must make progress while the submitter waits.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
        pool.Submit([&counter] { ++counter; }).get();
        ++counter;
      })
      .get();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, InlinePoolRunsNestedSubmitsInline) {
  // Size-1 pools execute inline, so nested Submit must not deadlock on a
  // queue no worker is draining.
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
        pool.Submit([&counter] { ++counter; }).get();
        ++counter;
      })
      .get();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelForTest, MoreThreadsThanItems) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  ParallelFor(pool, 0, 3, [&visits](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyRangeOnInlinePoolIsANoOp) {
  ThreadPool pool(1);
  int calls = 0;
  ParallelFor(pool, 0, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, BodyCanSubmitToTheSamePool) {
  // ParallelFor chunks occupy workers; bodies that enqueue extra tasks
  // must still complete (the futures are waited after ParallelFor).
  ThreadPool pool(4);
  std::atomic<int> nested{0};
  std::vector<std::future<void>> futures(8);
  ParallelFor(pool, 0, 8, [&](std::size_t i) {
    // Distinct elements, so no lock is needed around the slot write.
    futures[i] = pool.Submit([&nested] { ++nested; });
  });
  for (std::future<void>& future : futures) future.get();
  EXPECT_EQ(nested.load(), 8);
}

TEST(ParallelForTest, RethrowsBodyException) {
  ThreadPool pool(2);
  EXPECT_THROW(ParallelFor(pool, 0, 8,
                           [](std::size_t i) {
                             if (i == 3) throw std::runtime_error("bad");
                           }),
               std::runtime_error);
}

TEST(TaskGroupTest, WaitsForAllTasks) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    group.Run([&counter] { ++counter; });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroupTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 16; ++i) {
    group.Run([i, &completed] {
      ++completed;
      if (i % 4 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  // Every task ran to its throw point before Wait returned.
  EXPECT_EQ(completed.load(), 16);
  // The error was consumed: the group is clean and reusable.
  group.Run([&completed] { ++completed; });
  group.Wait();
  EXPECT_EQ(completed.load(), 17);
}

TEST(TaskGroupTest, InlinePoolRunsTasksInPlaceAndStillLatchesErrors) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  int ran = 0;
  // Inline pools execute inside Run(); the throw must not escape there
  // but surface at Wait(), matching the threaded behavior.
  group.Run([&ran] {
    ++ran;
    throw std::runtime_error("inline failure");
  });
  EXPECT_EQ(ran, 1);
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, ThrowDuringPoolDestructionReachesCaller) {
  // Regression test for the shutdown ordering fix: tasks still queued when
  // ~ThreadPool starts are drained during destruction; they throw while
  // the pool is shutting down. The process must survive and the exception
  // must reach the group's Wait() — not die in an abandoned future.
  std::optional<ThreadPool> pool(std::in_place, 2);
  TaskGroup group(*pool);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  // Park both workers so the throwing tasks sit in the queue until the
  // shutdown drain runs them.
  for (int i = 0; i < 2; ++i) {
    group.Run([gate] { gate.wait(); });
  }
  for (int i = 0; i < 8; ++i) {
    group.Run([] { throw std::runtime_error("thrown at shutdown"); });
  }
  std::thread releaser([&release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    release.set_value();
  });
  // Blocks joining the parked workers until the gate opens, then the
  // workers drain the throwing tasks as part of destruction.
  pool.reset();
  releaser.join();
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, DestructorSwallowsUnobservedErrors) {
  // A group destroyed without Wait() after a task threw must neither
  // terminate nor leak the exception anywhere observable.
  ThreadPool pool(2);
  {
    TaskGroup group(pool);
    group.Run([] { throw std::runtime_error("never observed"); });
  }
  // Still alive and the pool still works.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace sjoin
