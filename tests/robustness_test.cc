// Failure-injection and fuzz tests: the simulators must reject malformed
// policy outputs loudly, and hold their invariants under adversarial but
// legal policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sjoin/common/rng.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/reduction.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

class MalformedPolicy final : public ReplacementPolicy {
 public:
  enum class Kind { kUnknownId, kDuplicateId, kOversized };
  explicit MalformedPolicy(Kind kind) : kind_(kind) {}
  const char* name() const override { return "MALFORMED"; }

  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override {
    switch (kind_) {
      case Kind::kUnknownId:
        return {999999};
      case Kind::kDuplicateId: {
        TupleId id = (*ctx.arrivals)[0].id;
        return {id, id};
      }
      case Kind::kOversized: {
        std::vector<TupleId> all;
        for (const Tuple& t : *ctx.cached) all.push_back(t.id);
        for (const Tuple& t : *ctx.arrivals) all.push_back(t.id);
        return all;  // > capacity once the cache is full.
      }
    }
    return {};
  }

 private:
  Kind kind_;
};

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, UnknownRetainedIdAborts) {
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  MalformedPolicy policy(MalformedPolicy::Kind::kUnknownId);
  std::vector<Value> r = {1, 2};
  std::vector<Value> s = {3, 4};
  EXPECT_DEATH(sim.Run(r, s, policy), "not a candidate");
}

TEST(RobustnessDeathTest, DuplicateRetainedIdAborts) {
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  MalformedPolicy policy(MalformedPolicy::Kind::kDuplicateId);
  std::vector<Value> r = {1, 2};
  std::vector<Value> s = {3, 4};
  EXPECT_DEATH(sim.Run(r, s, policy), "twice");
}

TEST(RobustnessDeathTest, OversizedRetainedSetAborts) {
  JoinSimulator sim({.capacity = 1, .warmup = 0});
  MalformedPolicy policy(MalformedPolicy::Kind::kOversized);
  std::vector<Value> r = {1, 2};
  std::vector<Value> s = {3, 4};
  EXPECT_DEATH(sim.Run(r, s, policy), "retained");
}

class MalformedCachingPolicy final : public CachingPolicy {
 public:
  const char* name() const override { return "MALFORMED"; }
  std::vector<Value> SelectRetained(const CachingContext& ctx) override {
    (void)ctx;
    return {424242};  // Never a candidate.
  }
};

TEST(RobustnessDeathTest, CachingUnknownValueAborts) {
  CacheSimulator sim({.capacity = 2, .warmup = 0});
  MalformedCachingPolicy policy;
  std::vector<Value> refs = {1, 2};
  EXPECT_DEATH(sim.Run(refs, policy), "not a candidate");
}

// A legal but adversarial policy: retains a uniformly random valid subset
// of random size each step.
class FuzzPolicy final : public ReplacementPolicy {
 public:
  explicit FuzzPolicy(std::uint64_t seed) : rng_(seed) {}
  const char* name() const override { return "FUZZ"; }
  std::vector<TupleId> SelectRetained(const PolicyContext& ctx) override {
    std::vector<TupleId> pool;
    for (const Tuple& t : *ctx.cached) pool.push_back(t.id);
    for (const Tuple& t : *ctx.arrivals) pool.push_back(t.id);
    std::shuffle(pool.begin(), pool.end(), rng_.engine());
    std::size_t keep = std::min<std::size_t>(
        ctx.capacity, rng_.UniformIndex(pool.size() + 1));
    pool.resize(keep);
    return pool;
  }

 private:
  Rng rng_;
};

TEST(FuzzTest, SimulatorInvariantsHoldUnderRandomLegalPolicies) {
  Rng rng(2026);
  for (int trial = 0; trial < 15; ++trial) {
    Time len = rng.UniformInt(10, 120);
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 5));
      s.push_back(rng.UniformInt(0, 5));
    }
    std::size_t capacity = static_cast<std::size_t>(rng.UniformInt(1, 6));
    JoinSimulator sim({.capacity = capacity,
                       .warmup = rng.UniformInt(0, len / 2),
                       .window = std::nullopt,
                       .track_cache_composition = true});
    FuzzPolicy fuzz(static_cast<std::uint64_t>(trial));
    auto result = sim.Run(r, s, fuzz);
    EXPECT_GE(result.total_results, 0);
    EXPECT_GE(result.total_results, result.counted_results);
    for (double fraction : result.r_fraction_by_time) {
      EXPECT_GE(fraction, 0.0);
      EXPECT_LE(fraction, 1.0);
    }
    // And no legal policy may beat the offline optimum.
    OptOfflinePolicy opt(r, s, capacity);
    auto opt_result = sim.Run(r, s, opt);
    EXPECT_GE(opt_result.total_results, result.total_results);
  }
}

TEST(FuzzTest, WindowedOptUpperBoundsWindowedPolicies) {
  LinearTrendProcess r_process(1.0, -1.0,
                               DiscreteDistribution::BoundedUniform(-6, 6));
  LinearTrendProcess s_process(1.0, 0.0,
                               DiscreteDistribution::BoundedUniform(-8, 8));
  Rng rng(7);
  for (Time window : {3, 8, 20}) {
    auto pair = SampleStreamPair(r_process, s_process, 200, rng);
    JoinSimulator sim({.capacity = 4, .warmup = 0, .window = window});
    OptOfflinePolicy opt(pair.r, pair.s, 4, window);
    auto opt_result = sim.Run(pair.r, pair.s, opt);

    RandomPolicy rand(3);
    ProbPolicy prob;
    EXPECT_GE(opt_result.total_results,
              sim.Run(pair.r, pair.s, rand).total_results)
        << "window " << window;
    EXPECT_GE(opt_result.total_results,
              sim.Run(pair.r, pair.s, prob).total_results)
        << "window " << window;
  }
}

TEST(FuzzTest, ReductionHoldsForModelDrivenCachingPolicy) {
  // Theorem 1 with HEEB as the caching policy (stationary model).
  StationaryProcess reference(
      DiscreteDistribution::FromMasses(0, {0.4, 0.25, 0.2, 0.15}));
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    auto refs = SampleRealization(reference, 150, rng);
    HeebCachingPolicy::Options options;
    options.alpha = 6.0;
    options.horizon = 80;
    HeebCachingPolicy heeb(&reference, options);

    CacheSimulator cache_sim({.capacity = 2, .warmup = 0});
    auto cache_result = cache_sim.Run(refs, heeb);

    CachingReduction reduction(refs);
    ReductionJoinPolicy join_policy(&reduction, &heeb);
    JoinSimulator join_sim({.capacity = 2, .warmup = 0});
    auto join_result =
        join_sim.Run(reduction.r_stream(), reduction.s_stream(),
                     join_policy);
    EXPECT_EQ(cache_result.hits, join_result.total_results) << trial;
  }
}

}  // namespace
}  // namespace sjoin
