// Standalone differential fuzz driver. Runs seeded optimized-vs-oracle
// trials from the suite registry:
//
//   fuzz_differential                      # every suite, default trials
//   fuzz_differential --suite=min_cost_flow --trials=100000
//   fuzz_differential --suite=reduction --seed=20050613 --trials=1   # repro
//   fuzz_differential --list
//
// Exit status 0 iff every trial agreed. The reported first-failure line
// contains the exact command that replays the mismatch.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sjoin/testing/differential.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fuzz_differential [--suite=NAME] [--seed=N] [--trials=N] "
      "[--list]\n");
}

bool ParseUint64(const char* text, std::uint64_t* out) {
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::uint64_t>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using sjoin::testing::AllDifferentialSuites;
  using sjoin::testing::DifferentialReport;
  using sjoin::testing::DifferentialSuite;
  using sjoin::testing::FindDifferentialSuite;
  using sjoin::testing::kDifferentialBaseSeed;
  using sjoin::testing::RunDifferentialSuite;

  std::string suite_name;
  std::uint64_t base_seed = kDifferentialBaseSeed;
  std::int64_t trials = -1;  // -1: per-suite default
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--suite=", 8) == 0) {
      suite_name = arg + 8;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseUint64(arg + 7, &base_seed)) {
        PrintUsage();
        return 2;
      }
    } else if (std::strncmp(arg, "--trials=", 9) == 0) {
      std::uint64_t parsed = 0;
      if (!ParseUint64(arg + 9, &parsed) || parsed == 0) {
        PrintUsage();
        return 2;
      }
      trials = static_cast<std::int64_t>(parsed);
    } else if (std::strcmp(arg, "--list") == 0) {
      for (const DifferentialSuite& suite : AllDifferentialSuites()) {
        std::printf("%-18s %s (default %d trials)\n", suite.name,
                    suite.description, suite.default_trials);
      }
      return 0;
    } else {
      PrintUsage();
      return 2;
    }
  }

  std::vector<const DifferentialSuite*> selected;
  if (suite_name.empty()) {
    for (const DifferentialSuite& suite : AllDifferentialSuites()) {
      selected.push_back(&suite);
    }
  } else {
    const DifferentialSuite* suite = FindDifferentialSuite(suite_name);
    if (suite == nullptr) {
      std::fprintf(stderr, "unknown suite '%s'; --list shows the registry\n",
                   suite_name.c_str());
      return 2;
    }
    selected.push_back(suite);
  }

  bool all_ok = true;
  for (const DifferentialSuite* suite : selected) {
    int count = trials > 0 ? static_cast<int>(trials) : suite->default_trials;
    DifferentialReport report =
        RunDifferentialSuite(*suite, base_seed, count);
    std::printf("%s\n", report.Summary().c_str());
    std::fflush(stdout);
    all_ok = all_ok && report.ok();
  }
  return all_ok ? 0 : 1;
}
