// Differential suites for the simulators: the optimized JoinSimulator /
// MultiJoinSimulator against the no-reuse naive simulator, and the
// Theorem 1 caching<->joining reduction.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

void RunSuite(const char* name) {
  const DifferentialSuite* suite = FindDifferentialSuite(name);
  ASSERT_NE(suite, nullptr) << name;
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialSimulatorTest, JoinSimulatorMatchesNaive) {
  RunSuite("join_simulator");
}

TEST(DifferentialSimulatorTest, ReductionAndCachingHeebMatch) {
  RunSuite("reduction");
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
