#include "sjoin/core/expectimax.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sjoin/common/rng.h"
#include "sjoin/core/dominance.h"
#include "sjoin/core/ecb.h"
#include "sjoin/core/flow_expect_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/stochastic/scripted_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace {

// The Section 3.4 scenario (see flow_expect_test for the table).
struct Section34 {
  Section34() {
    std::vector<DiscreteDistribution> r_script;
    r_script.push_back(DiscreteDistribution::PointMass(-1000));
    r_script.push_back(DiscreteDistribution::PointMass(2));
    r_script.push_back(DiscreteDistribution::PointMass(3));
    r_script.push_back(DiscreteDistribution::FromMasses(
        2, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));
    r = std::make_unique<ScriptedProcess>(r_script);

    std::vector<DiscreteDistribution> s_script;
    s_script.push_back(DiscreteDistribution::PointMass(2));
    s_script.push_back(DiscreteDistribution::FromMasses(
        3, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));
    s_script.push_back(DiscreteDistribution::FromMasses(
        1, {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2}));
    s_script.push_back(DiscreteDistribution::FromMasses(
        1,
        {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2}));
    s = std::make_unique<ScriptedProcess>(s_script);
  }
  std::unique_ptr<ScriptedProcess> r;
  std::unique_ptr<ScriptedProcess> s;
  // Candidates at t0 = 0: the cached R(1) and the arriving S(2).
  std::vector<ExpectimaxCandidate> candidates = {{StreamSide::kR, 1},
                                                 {StreamSide::kS, 2}};
  ExpectimaxOptions options = {.horizon = 3, .capacity = 1};
};

TEST(ExpectimaxTest, Section34OptimumIsAdaptive175) {
  Section34 fixture;
  auto result = SolveExpectimax(*fixture.r, *fixture.s, 0,
                                fixture.candidates, fixture.options);
  EXPECT_NEAR(result.value, 1.75, 1e-9);
  // The unique optimal first decision takes the S(2) tuple (index 1).
  ASSERT_EQ(result.optimal_first_decisions.size(), 1u);
  EXPECT_EQ(result.optimal_first_decisions[0],
            (std::vector<std::size_t>{1}));
}

TEST(ExpectimaxTest, FlowExpectAchievesOnly160OnSection34) {
  Section34 fixture;
  FlowExpectPolicy policy(fixture.r.get(), fixture.s.get(),
                          {.lookahead = 3});
  double value = EvaluatePolicyExpectation(*fixture.r, *fixture.s, 0,
                                           fixture.candidates,
                                           fixture.options, policy);
  // FlowExpect keeps R(1) and re-evaluates each step, but never recovers:
  // exactly the best predetermined sequence's 1.6, a 0.15 gap below the
  // adaptive optimum.
  EXPECT_NEAR(value, 1.6, 1e-9);
}

TEST(ExpectimaxTest, PoliciesNeverExceedTheOptimum) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    // Random scripted processes: values in {0..3}, horizon 3.
    auto random_script = [&rng]() {
      std::vector<DiscreteDistribution> script;
      for (int t = 0; t < 4; ++t) {
        std::vector<double> masses(4);
        for (double& m : masses) m = rng.UniformReal() + 0.05;
        script.push_back(DiscreteDistribution::FromMasses(0, masses));
      }
      return std::make_unique<ScriptedProcess>(script);
    };
    auto r = random_script();
    auto s = random_script();
    std::vector<ExpectimaxCandidate> candidates = {
        {StreamSide::kR, rng.UniformInt(0, 3)},
        {StreamSide::kS, rng.UniformInt(0, 3)},
        {StreamSide::kR, rng.UniformInt(0, 3)}};
    ExpectimaxOptions options = {.horizon = 3, .capacity = 2};
    auto optimum = SolveExpectimax(*r, *s, 0, candidates, options);

    FlowExpectPolicy flow_expect(r.get(), s.get(), {.lookahead = 3});
    double fe = EvaluatePolicyExpectation(*r, *s, 0, candidates, options,
                                          flow_expect);
    EXPECT_LE(fe, optimum.value + 1e-9) << "trial " << trial;

    HeebJoinPolicy::Options heeb_options;
    heeb_options.alpha = 3.0;
    heeb_options.horizon = 4;
    HeebJoinPolicy heeb(r.get(), s.get(), heeb_options);
    double hv =
        EvaluatePolicyExpectation(*r, *s, 0, candidates, options, heeb);
    EXPECT_LE(hv, optimum.value + 1e-9) << "trial " << trial;
  }
}

TEST(ExpectimaxTest, Theorem3StrictDominanceRulesOutKeepingTheDominated) {
  // Theorem 3(2): if B_x strictly dominates B_y, every optimal algorithm
  // keeps x or discards y — so the root decision {y} (keep y, drop x)
  // can never be among the optimal first decisions.
  Rng rng(202);
  int verified = 0;
  for (int trial = 0; trial < 60 && verified < 12; ++trial) {
    auto random_script = [&rng]() {
      std::vector<DiscreteDistribution> script;
      for (int t = 0; t < 4; ++t) {
        std::vector<double> masses(4);
        for (double& m : masses) m = rng.UniformReal() + 0.02;
        script.push_back(DiscreteDistribution::FromMasses(0, masses));
      }
      return std::make_unique<ScriptedProcess>(script);
    };
    auto r = random_script();
    auto s = random_script();
    Value vx = rng.UniformInt(0, 3);
    Value vy = rng.UniformInt(0, 3);
    if (vx == vy) continue;

    // Both candidates from R (joining S); ECBs from the S script.
    StreamHistory empty;
    constexpr Time kHorizon = 3;
    auto bx = MakeJoiningEcb(*s, empty, 0, vx, kHorizon);
    auto by = MakeJoiningEcb(*s, empty, 0, vy, kHorizon);
    if (CompareEcb(bx, by, kHorizon) != Dominance::kStrictlyDominates) {
      continue;
    }
    ++verified;

    std::vector<ExpectimaxCandidate> candidates = {{StreamSide::kR, vx},
                                                   {StreamSide::kR, vy}};
    ExpectimaxOptions options = {.horizon = kHorizon, .capacity = 1};
    auto optimum = SolveExpectimax(*r, *s, 0, candidates, options);
    for (const auto& decision : optimum.optimal_first_decisions) {
      bool keeps_x = std::find(decision.begin(), decision.end(), 0u) !=
                     decision.end();
      bool keeps_y = std::find(decision.begin(), decision.end(), 1u) !=
                     decision.end();
      EXPECT_TRUE(keeps_x || !keeps_y)
          << "trial " << trial << ": an optimal decision kept the "
          << "strictly dominated tuple over the dominating one";
    }
  }
  EXPECT_GE(verified, 5) << "not enough strictly-dominated pairs sampled";
}

TEST(ExpectimaxTest, StationaryGreedyIsOptimal) {
  // With stationary streams the optimal policy keeps the highest-p tuple;
  // expectimax must agree with the closed-form expectation.
  auto dist = DiscreteDistribution::FromMasses(0, {0.7, 0.3});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  std::vector<ExpectimaxCandidate> candidates = {{StreamSide::kR, 0},
                                                 {StreamSide::kR, 1}};
  ExpectimaxOptions options = {.horizon = 2, .capacity = 1};
  auto result = SolveExpectimax(r, s, 0, candidates, options);
  // Keeping R(0): each future S arrival matches w.p. 0.7 — but arrivals
  // can also replace it; with horizon 2 the optimum keeps value-0 tuples
  // throughout: expected 0.7 per step = 1.4.
  EXPECT_NEAR(result.value, 1.4, 1e-9);
  ASSERT_FALSE(result.optimal_first_decisions.empty());
  for (const auto& decision : result.optimal_first_decisions) {
    EXPECT_EQ(decision, (std::vector<std::size_t>{0}));
  }
}

}  // namespace
}  // namespace sjoin
