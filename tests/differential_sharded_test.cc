// Differential suite for the sharded engine: ShardedStreamEngine at shard
// counts {1, 2, 4, 8} against the serial StreamEngine on the same
// realization and policy, comparing per-step retained/cache/produced
// traces and run telemetry bit for bit. (The SJOIN_DIFF_SHARDS env hook
// additionally reruns the other suites' optimized sides sharded; this
// suite is the dedicated, always-on statement of the contract.)

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialShardedTest, ShardedEngineMatchesSerialBitForBit) {
  const DifferentialSuite* suite = FindDifferentialSuite("sharded_engine");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
