#include "sjoin/multi/multi_join_simulator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "sjoin/common/rng.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/scored_policy.h"
#include "sjoin/multi/multi_baseline_policies.h"
#include "sjoin/multi/multi_heeb_policy.h"
#include "sjoin/multi/multi_opt_offline_policy.h"
#include "sjoin/policies/edge_budget_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

// A multi-policy that keeps the newest tuples.
class MultiKeepNewest final : public MultiReplacementPolicy {
 public:
  const char* name() const override { return "KEEP-NEWEST"; }
  std::vector<TupleId> SelectRetained(const MultiPolicyContext& ctx) override {
    std::vector<MultiTuple> all = *ctx.cached;
    all.insert(all.end(), ctx.arrivals->begin(), ctx.arrivals->end());
    std::sort(all.begin(), all.end(),
              [](const MultiTuple& a, const MultiTuple& b) {
                if (a.arrival != b.arrival) return a.arrival > b.arrival;
                return a.id > b.id;
              });
    std::vector<TupleId> retained;
    for (std::size_t i = 0; i < std::min(ctx.capacity, all.size()); ++i) {
      retained.push_back(all[i].id);
    }
    return retained;
  }
};

TEST(MultiJoinSimulatorTest, TwoStreamsReduceToBinarySimulator) {
  std::vector<Value> r = {1, 2, 3, 1, 2, 9, 1};
  std::vector<Value> s = {9, 1, 1, 2, 1, 1, 3};

  MultiJoinSimulator multi(2, {{0, 1}}, {.capacity = 3, .warmup = 2});
  MultiKeepNewest multi_policy;
  auto multi_result = multi.Run({r, s}, multi_policy);

  // Binary equivalent with the keep-newest policy.
  class KeepNewest final : public ScoredPolicy {
   public:
    const char* name() const override { return "KEEP-NEWEST"; }

   protected:
    double Score(const Tuple& tuple, const PolicyContext& ctx) override {
      (void)ctx;
      return static_cast<double>(tuple.arrival);
    }
  };
  JoinSimulator binary({.capacity = 3, .warmup = 2});
  KeepNewest binary_policy;
  auto binary_result = binary.Run(r, s, binary_policy);

  EXPECT_EQ(multi_result.total_results, binary_result.total_results);
  EXPECT_EQ(multi_result.counted_results, binary_result.counted_results);
}

TEST(MultiJoinSimulatorTest, ChainJoinCountsBothEdges) {
  // Streams 0-1-2 in a chain; stream 1's tuples join both neighbors.
  //   t0: all distinct. t1: stream 0 and 2 both emit the value stream 1
  //   emitted at t0 -> 2 results if it was cached.
  std::vector<Value> s0 = {10, 5, 11};
  std::vector<Value> s1 = {5, 20, 21};
  std::vector<Value> s2 = {30, 5, 31};
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}}, {.capacity = 9, .warmup = 0});
  MultiKeepNewest policy;
  auto result = sim.Run({s0, s1, s2}, policy);
  // At t=1: cached s1(5) joins arrivals 0(5) and 2(5): +2. Also cached
  // s0(10)/s2(30) join nothing. At t=2: nothing matches.
  EXPECT_EQ(result.total_results, 2);
}

TEST(MultiJoinSimulatorTest, NonAdjacentStreamsDoNotJoin) {
  // Chain 0-1-2: streams 0 and 2 never join each other.
  std::vector<Value> s0 = {7, 7, 7};
  std::vector<Value> s1 = {1, 2, 3};
  std::vector<Value> s2 = {7, 7, 7};
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}}, {.capacity = 9, .warmup = 0});
  MultiKeepNewest policy;
  auto result = sim.Run({s0, s1, s2}, policy);
  EXPECT_EQ(result.total_results, 0);
}

TEST(MultiJoinSimulatorTest, WindowRestrictsJoins) {
  std::vector<Value> s0 = {5, 0, 0, 0};
  std::vector<Value> s1 = {9, 9, 9, 5};
  MultiJoinSimulator no_window(2, {{0, 1}}, {.capacity = 8, .warmup = 0});
  MultiJoinSimulator window(2, {{0, 1}},
                            {.capacity = 8, .warmup = 0, .window = Time{2}});
  MultiKeepNewest policy;
  EXPECT_EQ(no_window.Run({s0, s1}, policy).total_results, 1);
  EXPECT_EQ(window.Run({s0, s1}, policy).total_results, 0);
}

TEST(MultiHeebPolicyTest, MatchesBinaryHeebOnTwoStreams) {
  LinearTrendProcess r(1.0, -1.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                      0.0, 1.5, -10, 10));
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 2.5, -15, 15));
  Rng rng(91);
  auto pair = SampleStreamPair(r, s, 300, rng);

  MultiJoinSimulator multi(2, {{0, 1}}, {.capacity = 6, .warmup = 20});
  MultiHeebPolicy multi_heeb({&r, &s}, &multi,
                             {.alpha = 10.0, .horizon = 100});
  auto multi_result = multi.Run({pair.r, pair.s}, multi_heeb);

  JoinSimulator binary({.capacity = 6, .warmup = 20});
  HeebJoinPolicy::Options options;
  options.mode = HeebJoinPolicy::Mode::kDirect;
  options.alpha = 10.0;
  options.horizon = 100;
  HeebJoinPolicy binary_heeb(&r, &s, options);
  auto binary_result = binary.Run(pair.r, pair.s, binary_heeb);

  EXPECT_EQ(multi_result.counted_results, binary_result.counted_results);
}

TEST(MultiHeebPolicyTest, BeatsRandomOnThreeTrendingStreams) {
  auto noise = [] {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -10,
                                                            10);
  };
  LinearTrendProcess p0(1.0, 0.0, noise());
  LinearTrendProcess p1(1.0, -1.0, noise());
  LinearTrendProcess p2(1.0, -2.0, noise());
  Rng rng(92);
  std::vector<std::vector<Value>> streams = {
      SampleRealization(p0, 400, rng), SampleRealization(p1, 400, rng),
      SampleRealization(p2, 400, rng)};

  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}, {0, 2}},
                         {.capacity = 9, .warmup = 40});
  MultiHeebPolicy heeb({&p0, &p1, &p2}, &sim, {.alpha = 10.0,
                                               .horizon = 100});
  MultiRandomPolicy random_policy(5);
  EXPECT_GT(sim.Run(streams, heeb).counted_results,
            sim.Run(streams, random_policy).counted_results);
}

TEST(MultiOptOfflineTest, TwoStreamsMatchBinaryOptOffline) {
  Rng rng(93);
  for (int trial = 0; trial < 8; ++trial) {
    Time len = 40;
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 6));
      s.push_back(rng.UniformInt(0, 6));
    }
    MultiJoinSimulator multi(2, {{0, 1}}, {.capacity = 3, .warmup = 0});
    MultiOptOfflinePolicy multi_opt(&multi, {r, s}, 3);
    auto multi_result = multi.Run({r, s}, multi_opt);

    OptOfflinePolicy binary_opt(r, s, 3);
    JoinSimulator binary({.capacity = 3, .warmup = 0});
    auto binary_result = binary.Run(r, s, binary_opt);
    EXPECT_EQ(multi_result.total_results, binary_result.total_results)
        << trial;
    EXPECT_EQ(multi_opt.optimal_benefit(), binary_opt.optimal_benefit());
  }
}

TEST(MultiOptOfflineTest, SimulatorCountMatchesFlowCost) {
  Rng rng(94);
  std::vector<std::vector<Value>> streams(3);
  for (auto& stream : streams) {
    for (Time t = 0; t < 60; ++t) stream.push_back(rng.UniformInt(0, 5));
  }
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}, {0, 2}},
                         {.capacity = 4, .warmup = 0});
  MultiOptOfflinePolicy opt(&sim, streams, 4);
  auto result = sim.Run(streams, opt);
  EXPECT_EQ(result.total_results, opt.optimal_benefit());
}

TEST(MultiOptOfflineTest, UpperBoundsMultiHeebAndRandom) {
  auto noise = [] {
    return DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -8,
                                                            8);
  };
  LinearTrendProcess p0(1.0, 0.0, noise());
  LinearTrendProcess p1(1.0, -1.0, noise());
  LinearTrendProcess p2(1.0, -2.0, noise());
  Rng rng(95);
  std::vector<std::vector<Value>> streams = {
      SampleRealization(p0, 250, rng), SampleRealization(p1, 250, rng),
      SampleRealization(p2, 250, rng)};
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}}, {.capacity = 6, .warmup = 0});
  MultiOptOfflinePolicy opt(&sim, streams, 6);
  MultiHeebPolicy heeb({&p0, &p1, &p2}, &sim, {.alpha = 10.0,
                                               .horizon = 80});
  MultiRandomPolicy rand(4);
  auto opt_result = sim.Run(streams, opt);
  EXPECT_GE(opt_result.total_results,
            sim.Run(streams, heeb).total_results);
  EXPECT_GE(opt_result.total_results,
            sim.Run(streams, rand).total_results);
  EXPECT_EQ(opt_result.total_results, opt.optimal_benefit());
}

// --- Join-edge validation (constructor CHECKs) ---------------------------

TEST(MultiJoinDeathTest, RejectsOutOfRangeStream) {
  EXPECT_DEATH(MultiJoinSimulator(3, {{0, 3}}, {.capacity = 2}), "");
}

TEST(MultiJoinDeathTest, RejectsNegativeStream) {
  EXPECT_DEATH(MultiJoinSimulator(3, {{-1, 1}}, {.capacity = 2}), "");
}

TEST(MultiJoinDeathTest, RejectsSelfJoinEdge) {
  EXPECT_DEATH(MultiJoinSimulator(3, {{1, 1}}, {.capacity = 2}), "");
}

TEST(MultiJoinDeathTest, RejectsDuplicateEdge) {
  EXPECT_DEATH(MultiJoinSimulator(3, {{0, 1}, {0, 1}}, {.capacity = 2}),
               "duplicate or mirrored join edge");
}

TEST(MultiJoinDeathTest, RejectsMirroredEdge) {
  EXPECT_DEATH(MultiJoinSimulator(3, {{0, 1}, {1, 0}}, {.capacity = 2}),
               "duplicate or mirrored join edge");
}

// --- Runtime probe planner (DESIGN.md §2f) -------------------------------

// A 5-way star: stream 0 is the hub.
std::vector<std::pair<int, int>> StarEdges() {
  return {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
}

std::vector<std::vector<Value>> TrendingStreams(
    std::vector<std::unique_ptr<LinearTrendProcess>>* processes, int n,
    Time len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Value>> streams;
  for (int s = 0; s < n; ++s) {
    processes->push_back(std::make_unique<LinearTrendProcess>(
        1.0, -0.5 * s,
        DiscreteDistribution::TruncatedDiscretizedNormal(0.0, 2.0, -8, 8)));
    streams.push_back(SampleRealization(*processes->back(), len, rng));
  }
  return streams;
}

TEST(ProbePlannerIntegrationTest, PlannerIsBitIdenticalToNaiveOrder) {
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 5, 300, 211);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator naive(5, StarEdges(), {.capacity = 10, .warmup = 20});
  MultiJoinSimulator planned(5, StarEdges(),
                             {.capacity = 10,
                              .warmup = 20,
                              .planner = true,
                              .replan_interval = 16});
  MultiHeebPolicy heeb(processes, &naive, {.alpha = 10.0, .horizon = 60});
  auto naive_result = naive.Run(streams, heeb);
  auto planned_result = planned.Run(streams, heeb);

  EXPECT_EQ(naive_result.counted_results, planned_result.counted_results);
  EXPECT_EQ(naive_result.total_results, planned_result.total_results);
  // The planner actually ran: probes were considered and checkpoints hit.
  EXPECT_GT(planned_result.telemetry.probes, 0);
  EXPECT_GT(planned_result.telemetry.plan_replans, 0);
  EXPECT_EQ(naive_result.telemetry.probes, 0);  // Naive path reports none.
}

TEST(ProbePlannerIntegrationTest, WindowedPlannerStaysBitIdentical) {
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 3, 200, 212);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator::Options base = {
      .capacity = 6, .warmup = 10, .window = 25};
  MultiJoinSimulator naive(3, {{0, 1}, {1, 2}}, base);
  base.planner = true;
  base.replan_interval = 8;
  MultiJoinSimulator planned(3, {{0, 1}, {1, 2}}, base);
  MultiHeebPolicy heeb(processes, &naive, {.alpha = 8.0, .horizon = 40});
  EXPECT_EQ(naive.Run(streams, heeb).counted_results,
            planned.Run(streams, heeb).counted_results);
}

// --- Policy score caches (bit-identical memoization) ---------------------

TEST(ScoreCacheTest, MultiHeebCacheOnMatchesCacheOff) {
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 5, 250, 213);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator sim(5, StarEdges(), {.capacity = 10, .warmup = 20});
  MultiHeebPolicy plain(processes, &sim, {.alpha = 10.0, .horizon = 60});
  MultiHeebPolicy cached(processes, &sim,
                         {.alpha = 10.0, .horizon = 60,
                          .use_score_cache = true});
  EXPECT_EQ(sim.Run(streams, plain).counted_results,
            sim.Run(streams, cached).counted_results);
  EXPECT_GT(cached.score_cache_stats().hits, 0);
}

TEST(ScoreCacheTest, MultiProbAndLifeCacheOnMatchesCacheOff) {
  Rng rng(214);
  std::vector<std::vector<Value>> streams(3);
  for (auto& stream : streams) {
    for (Time t = 0; t < 300; ++t) stream.push_back(rng.UniformInt(0, 12));
  }
  MultiJoinSimulator sim(3, {{0, 1}, {1, 2}, {0, 2}},
                         {.capacity = 8, .warmup = 10});

  MultiProbPolicy prob_plain(&sim, {.assumed_lifetime = 50});
  MultiProbPolicy prob_cached(
      &sim, {.assumed_lifetime = 50, .use_score_cache = true});
  EXPECT_EQ(sim.Run(streams, prob_plain).counted_results,
            sim.Run(streams, prob_cached).counted_results);
  EXPECT_GT(prob_cached.score_cache_stats().hits, 0);

  MultiLifePolicy life_plain(&sim, {.lifetime = 60});
  MultiLifePolicy life_cached(&sim,
                              {.lifetime = 60, .use_score_cache = true});
  EXPECT_EQ(sim.Run(streams, life_plain).counted_results,
            sim.Run(streams, life_cached).counted_results);
  EXPECT_GT(life_cached.score_cache_stats().hits, 0);
}

// --- Per-edge cache budgeting --------------------------------------------

TEST(EdgeBudgetPolicyTest, BudgetsPartitionCapacityAndRunIsDeterministic) {
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 5, 300, 215);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator sim(5, StarEdges(), {.capacity = 9, .warmup = 20});
  EdgeBudgetPolicy policy(processes, &sim.topology(),
                          {.alpha = 10.0,
                           .horizon = 60,
                           .realloc_interval = 32,
                           .use_score_cache = true});
  auto first = sim.Run(streams, policy);

  // Budgets partition the shared capacity across the four star edges.
  std::size_t total = 0;
  for (std::size_t b : policy.budgets()) total += b;
  EXPECT_EQ(policy.budgets().size(), 4u);
  EXPECT_EQ(total, 9u);
  EXPECT_GT(policy.realloc_checkpoints(), 0);
  EXPECT_GT(policy.score_cache_stats().hits, 0);

  // Reallocation is a pure function of the run prefix: rerun replays.
  auto second = sim.Run(streams, policy);
  EXPECT_EQ(first.counted_results, second.counted_results);
  EXPECT_EQ(first.total_results, second.total_results);
}

TEST(EdgeBudgetPolicyTest, PlannerDoesNotChangeEdgeBudgetResults) {
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 5, 250, 216);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator naive(5, StarEdges(), {.capacity = 8, .warmup = 15});
  MultiJoinSimulator planned(5, StarEdges(),
                             {.capacity = 8,
                              .warmup = 15,
                              .planner = true,
                              .replan_interval = 16});
  EdgeBudgetPolicy policy(processes, &naive.topology(),
                          {.alpha = 10.0, .horizon = 50});
  EXPECT_EQ(naive.Run(streams, policy).counted_results,
            planned.Run(streams, policy).counted_results);
}

TEST(EdgeBudgetPolicyTest, RetainsCompetitiveResultsOnSkewedStar) {
  // Edge (0, 1) carries nearly all the matches; the budgeter should not
  // do worse than random despite splitting capacity across edges.
  std::vector<std::unique_ptr<LinearTrendProcess>> owned;
  auto streams = TrendingStreams(&owned, 5, 300, 217);
  std::vector<const StochasticProcess*> processes;
  for (const auto& p : owned) processes.push_back(p.get());

  MultiJoinSimulator sim(5, StarEdges(), {.capacity = 10, .warmup = 20});
  EdgeBudgetPolicy budget(processes, &sim.topology(),
                          {.alpha = 10.0, .horizon = 60});
  MultiRandomPolicy random_policy(7);
  EXPECT_GT(sim.Run(streams, budget).counted_results,
            sim.Run(streams, random_policy).counted_results);
}

}  // namespace
}  // namespace sjoin
