// Differential suite for the batched SoA scoring kernels: every
// batch-scorable policy family (HEEB kDirect / kTimeIncremental /
// kWalkTable, PROB, LIFE, caching HEEB) run serial and sharded with batch
// scoring off and on, comparing full per-step traces (or all four cache
// counters) bit for bit against the serial scalar baseline. The
// SJOIN_DIFF_BATCH env hook pins both sides to one flag value — the TSan
// job uses it to drive the batch kernels under the race detector.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialBatchTest, BatchScoringMatchesScalarBitForBit) {
  const DifferentialSuite* suite = FindDifferentialSuite("batch_scoring");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
