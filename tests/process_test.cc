#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/stochastic/ar1_process.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/scripted_process.h"
#include "sjoin/stochastic/seasonal_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

TEST(OfflineProcessTest, PredictsExactSequence) {
  OfflineProcess process({10, 20, 30});
  StreamHistory history;
  EXPECT_DOUBLE_EQ(process.Predict(history, 0).Prob(10), 1.0);
  EXPECT_DOUBLE_EQ(process.Predict(history, 2).Prob(30), 1.0);
  EXPECT_DOUBLE_EQ(process.Predict(history, 2).Prob(10), 0.0);
  EXPECT_TRUE(process.Predict(history, 3).IsEmpty());
  EXPECT_TRUE(process.IsIndependent());
}

TEST(OfflineProcessTest, SampleReproducesSequence) {
  OfflineProcess process({5, 6, 7});
  Rng rng(1);
  auto values = SampleRealization(process, 3, rng);
  EXPECT_EQ(values, (std::vector<Value>{5, 6, 7}));
}

TEST(StationaryProcessTest, TimeInvariant) {
  StationaryProcess process(DiscreteDistribution::BoundedUniform(0, 4));
  StreamHistory history({1, 2, 3});
  EXPECT_NEAR(process.Predict(history, 3).Prob(2), 0.2, 1e-12);
  EXPECT_NEAR(process.Predict(history, 1000).Prob(2), 0.2, 1e-12);
}

TEST(LinearTrendProcessTest, PredictionShiftsWithTrend) {
  LinearTrendProcess process(1.0, 0.0,
                             DiscreteDistribution::BoundedUniform(-10, 10));
  StreamHistory history;
  auto at100 = process.Predict(history, 100);
  EXPECT_EQ(at100.MinValue(), 90);
  EXPECT_EQ(at100.MaxValue(), 110);
  EXPECT_NEAR(at100.Prob(100), 1.0 / 21.0, 1e-12);
  EXPECT_EQ(process.TrendAt(7), 7);
  EXPECT_TRUE(process.IsIndependent());
}

TEST(LinearTrendProcessTest, NonUnitSlopeRounds) {
  LinearTrendProcess process(0.5, 10.0, DiscreteDistribution::PointMass(0));
  EXPECT_EQ(process.TrendAt(0), 10);
  EXPECT_EQ(process.TrendAt(3), 12);  // round(11.5) = 12 (away from zero).
}

TEST(RandomWalkProcessTest, OneStepPredictionShiftsFromLast) {
  RandomWalkProcess process(DiscreteDistribution::BoundedUniform(-1, 1), 0);
  StreamHistory history({0, 2, 5});
  auto next = process.Predict(history, 3);
  EXPECT_EQ(next.MinValue(), 4);
  EXPECT_EQ(next.MaxValue(), 6);
  EXPECT_NEAR(next.Prob(5), 1.0 / 3.0, 1e-12);
  EXPECT_FALSE(process.IsIndependent());
}

TEST(RandomWalkProcessTest, MultiStepIsConvolutionPower) {
  RandomWalkProcess process(DiscreteDistribution::BoundedUniform(0, 1), 0);
  StreamHistory history({10});
  // Two fair +0/+1 steps from 10: {10: 1/4, 11: 1/2, 12: 1/4}.
  auto two = process.Predict(history, 2);
  EXPECT_NEAR(two.Prob(10), 0.25, 1e-12);
  EXPECT_NEAR(two.Prob(11), 0.5, 1e-12);
  EXPECT_NEAR(two.Prob(12), 0.25, 1e-12);
}

TEST(RandomWalkProcessTest, EmptyHistoryUsesInitialValue) {
  RandomWalkProcess process(DiscreteDistribution::PointMass(3), 100);
  StreamHistory history;
  // X_0 = initial + one step.
  EXPECT_DOUBLE_EQ(process.Predict(history, 0).Prob(103), 1.0);
  EXPECT_DOUBLE_EQ(process.Predict(history, 1).Prob(106), 1.0);
}

TEST(RandomWalkProcessTest, PredictionMatchesMonteCarlo) {
  RandomWalkProcess process(
      DiscreteDistribution::DiscretizedNormal(0.5, 1.0), 0);
  StreamHistory history({0});
  auto predicted = process.Predict(history, 4);  // 4 steps ahead.
  Rng rng(99);
  constexpr int kPaths = 40000;
  int hits = 0;
  for (int p = 0; p < kPaths; ++p) {
    StreamHistory h({0});
    Value v = 0;
    for (int step = 0; step < 4; ++step) {
      v = process.SampleNext(h, rng);
      h.Append(v);
    }
    if (v == 2) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kPaths, predicted.Prob(2), 0.01);
}

TEST(Ar1ProcessTest, OneStepConditionalLaw) {
  Ar1Process process(5.0, 0.5, 2.0, 0);
  StreamHistory history({10});
  auto next = process.Predict(history, 1);
  // mean = 5 + 0.5 * 10 = 10, sd = 2.
  EXPECT_NEAR(next.Mean(), 10.0, 1e-6);
  EXPECT_NEAR(std::sqrt(next.Variance()), 2.0, 0.05);
}

TEST(Ar1ProcessTest, MultiStepClosedForm) {
  Ar1Process process(5.0, 0.5, 2.0, 0);
  // mu_3 from x=10: 0.125*10 + 5*(1-0.125)/0.5 = 1.25 + 8.75 = 10.
  EXPECT_NEAR(process.ConditionalMean(10.0, 3), 10.0, 1e-12);
  // s_3^2 = 4 * (1 - 0.5^6) / (1 - 0.25) = 4 * 0.984375 / 0.75.
  EXPECT_NEAR(process.ConditionalSigma(3),
              std::sqrt(4.0 * 0.984375 / 0.75), 1e-12);
  EXPECT_NEAR(process.StationaryMean(), 10.0, 1e-12);
}

TEST(Ar1ProcessTest, Phi1EqualOneDegeneratesToWalk) {
  Ar1Process process(2.0, 1.0, 1.5, 0);
  EXPECT_NEAR(process.ConditionalMean(7.0, 4), 7.0 + 8.0, 1e-12);
  EXPECT_NEAR(process.ConditionalSigma(4), 1.5 * 2.0, 1e-12);
}

TEST(Ar1ProcessTest, LongHorizonApproachesStationaryLaw) {
  Ar1Process process(5.0, 0.5, 2.0, 0);
  EXPECT_NEAR(process.ConditionalMean(123.0, 200), 10.0, 1e-6);
  EXPECT_NEAR(process.ConditionalSigma(200),
              2.0 / std::sqrt(1.0 - 0.25), 1e-6);
}

TEST(ScriptedProcessTest, PerTimeDistributions) {
  ScriptedProcess process({DiscreteDistribution::PointMass(1),
                           DiscreteDistribution::FromMasses(2, {0.5, 0.5})});
  StreamHistory history;
  EXPECT_DOUBLE_EQ(process.Predict(history, 0).Prob(1), 1.0);
  EXPECT_NEAR(process.Predict(history, 1).Prob(3), 0.5, 1e-12);
  EXPECT_TRUE(process.Predict(history, 2).IsEmpty());
}

TEST(SeasonalProcessTest, TrendOscillatesWithPeriod) {
  SeasonalProcess process(100.0, 10.0, 40.0, 0.0,
                          DiscreteDistribution::PointMass(0));
  EXPECT_EQ(process.TrendAt(0), 100);
  EXPECT_EQ(process.TrendAt(10), 110);   // Quarter period: peak.
  EXPECT_EQ(process.TrendAt(20), 100);   // Half period: back to mean.
  EXPECT_EQ(process.TrendAt(30), 90);    // Three quarters: trough.
  EXPECT_EQ(process.TrendAt(40), process.TrendAt(0));  // Full period.
  EXPECT_EQ(process.TrendAt(47), process.TrendAt(7));
}

TEST(SeasonalProcessTest, PredictionShiftsWithSeason) {
  SeasonalProcess process(100.0, 10.0, 40.0, 0.0,
                          DiscreteDistribution::BoundedUniform(-3, 3));
  StreamHistory history;
  auto at_peak = process.Predict(history, 10);
  EXPECT_EQ(at_peak.MinValue(), 107);
  EXPECT_EQ(at_peak.MaxValue(), 113);
  EXPECT_NEAR(at_peak.Prob(110), 1.0 / 7.0, 1e-12);
  EXPECT_TRUE(process.IsIndependent());
}

TEST(SeasonalProcessTest, CloneIsEquivalent) {
  SeasonalProcess process(5.0, 2.0, 12.0, 0.5,
                          DiscreteDistribution::BoundedUniform(-1, 1));
  auto clone = process.Clone();
  StreamHistory history;
  for (Time t = 0; t < 30; ++t) {
    EXPECT_NEAR(process.Predict(history, t).Mean(),
                clone->Predict(history, t).Mean(), 1e-12);
  }
}

TEST(StreamSamplerTest, PairHasRequestedLength) {
  StationaryProcess r(DiscreteDistribution::BoundedUniform(0, 9));
  StationaryProcess s(DiscreteDistribution::BoundedUniform(0, 9));
  Rng rng(5);
  auto pair = SampleStreamPair(r, s, 50, rng);
  EXPECT_EQ(pair.r.size(), 50u);
  EXPECT_EQ(pair.s.size(), 50u);
}

// Exact equality of two pmfs: same support bounds and bit-identical masses.
void ExpectSameDistribution(const DiscreteDistribution& expected,
                            const DiscreteDistribution& actual) {
  ASSERT_EQ(expected.IsEmpty(), actual.IsEmpty());
  if (expected.IsEmpty()) return;
  ASSERT_EQ(expected.MinValue(), actual.MinValue());
  ASSERT_EQ(expected.MaxValue(), actual.MaxValue());
  for (Value v = expected.MinValue(); v <= expected.MaxValue(); ++v) {
    EXPECT_DOUBLE_EQ(expected.Prob(v), actual.Prob(v)) << "at value " << v;
  }
}

TEST(SeasonalProcessTest, PredictIntoMatchesPredict) {
  SeasonalProcess process(100.0, 10.0, 40.0, 0.7,
                          DiscreteDistribution::BoundedUniform(-3, 3));
  StreamHistory history;
  DiscreteDistribution reused;  // One buffer across every call.
  for (Time t = 0; t < 90; ++t) {
    process.PredictInto(history, t, &reused);
    ExpectSameDistribution(process.Predict(history, t), reused);
  }
}

TEST(ScriptedProcessTest, PredictIntoMatchesPredict) {
  ScriptedProcess process({DiscreteDistribution::PointMass(4),
                           DiscreteDistribution::FromMasses(-2, {0.25, 0.75}),
                           DiscreteDistribution::BoundedUniform(0, 6)});
  StreamHistory history;
  DiscreteDistribution reused;
  for (Time t = 0; t < 3; ++t) {
    process.PredictInto(history, t, &reused);
    ExpectSameDistribution(process.Predict(history, t), reused);
  }
  // Beyond the script PredictInto must leave the reused buffer empty, not
  // the stale previous pmf.
  process.PredictInto(history, 3, &reused);
  EXPECT_TRUE(reused.IsEmpty());
  ExpectSameDistribution(process.Predict(history, 3), reused);
}

TEST(LinearTrendProcessTest, PredictIntoMatchesPredict) {
  LinearTrendProcess process(
      0.75, -4.0, DiscreteDistribution::DiscretizedNormal(0.0, 2.0));
  StreamHistory history;
  DiscreteDistribution reused;
  for (Time t = 0; t < 60; ++t) {
    process.PredictInto(history, t, &reused);
    ExpectSameDistribution(process.Predict(history, t), reused);
  }
}

TEST(PredictIntoTest, BufferReusedAcrossProcessesAndSupportSizes) {
  // Interleave processes whose supports differ in size and location so the
  // shared buffer must both grow and shrink; each call must fully replace
  // the previous contents.
  SeasonalProcess seasonal(0.0, 5.0, 16.0, 0.0,
                           DiscreteDistribution::BoundedUniform(-1, 1));
  ScriptedProcess scripted({DiscreteDistribution::BoundedUniform(100, 140),
                            DiscreteDistribution::PointMass(-7)});
  LinearTrendProcess trend(2.0, 0.0,
                           DiscreteDistribution::BoundedUniform(-10, 10));
  StreamHistory history;
  DiscreteDistribution reused;
  std::vector<const StochasticProcess*> processes = {&seasonal, &scripted,
                                                     &trend};
  for (Time t = 0; t < 2; ++t) {
    for (const StochasticProcess* process : processes) {
      process->PredictInto(history, t, &reused);
      ExpectSameDistribution(process->Predict(history, t), reused);
    }
  }
}

TEST(StreamSamplerTest, WalkRealizationHasUnitSteps) {
  RandomWalkProcess process(DiscreteDistribution::BoundedUniform(-1, 1), 0);
  Rng rng(6);
  auto values = SampleRealization(process, 200, rng);
  Value prev = 0;
  for (Value v : values) {
    EXPECT_LE(std::llabs(v - prev), 1);
    prev = v;
  }
}

}  // namespace
}  // namespace sjoin
