#include "sjoin/common/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace sjoin {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("perf_smoke");
  w.Key("threads");
  w.Int(8);
  w.Key("ok");
  w.Bool(true);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"name":"perf_smoke","threads":8,"ok":true})");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, NestedContainersGetCommasRight) {
  JsonWriter w;
  w.BeginObject();
  w.Key("runs");
  w.BeginArray();
  w.BeginObject();
  w.Key("t");
  w.Int(0);
  w.EndObject();
  w.BeginObject();
  w.Key("t");
  w.Int(1);
  w.Key("nested");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.EndArray();
  w.EndObject();
  w.EndArray();
  w.Key("tail");
  w.String("x");
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"runs":[{"t":0},{"t":1,"nested":[1,2]}],"tail":"x"})");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("empty_obj");
  w.BeginObject();
  w.EndObject();
  w.Key("empty_arr");
  w.BeginArray();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"empty_obj":{},"empty_arr":[]})");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, EscapesQuotesBackslashesAndNamedControls) {
  JsonWriter w;
  w.String("a\"b\\c\nd\te");
  EXPECT_EQ(w.str(), R"("a\"b\\c\nd\te")");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, EscapesAllControlCharacters) {
  // Every byte below 0x20 must come out escaped, including the ones
  // without a short form (\r, \b, \f, \v, NUL, 0x1f).
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw += c;
  raw += '\0';  // and an embedded NUL, mid-string below
  raw += 'z';
  JsonWriter w;
  w.String(raw);
  const std::string& out = w.str();
  EXPECT_TRUE(JsonParses(out)) << out;
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  EXPECT_NE(out.find("\\u000b"), std::string::npos);  // \v
  EXPECT_NE(out.find("\\u000d"), std::string::npos);  // \r
  EXPECT_NE(out.find("\\u0000"), std::string::npos);  // embedded NUL
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\t"), std::string::npos);
  // No raw control byte may survive between the quotes.
  for (char c : out) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(JsonWriterTest, KeysAreEscapedToo) {
  JsonWriter w;
  w.BeginObject();
  w.Key("we\"ird\\key");
  w.Int(1);
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"we\"ird\\key":1})");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, Utf8PassesThroughUnmangled) {
  JsonWriter w;
  w.String("héllo → wörld");
  EXPECT_EQ(w.str(), "\"héllo → wörld\"");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Double(std::numeric_limits<double>::quiet_NaN());
  w.Double(std::numeric_limits<double>::infinity());
  w.Double(-std::numeric_limits<double>::infinity());
  w.Double(0.5);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,null,0.5]");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonWriterTest, DoublesKeepFullPrecision) {
  JsonWriter w;
  w.Double(0.1);
  EXPECT_EQ(w.str(), "0.10000000000000001");
  EXPECT_TRUE(JsonParses(w.str()));

  JsonWriter big;
  big.Double(1e308);
  EXPECT_TRUE(JsonParses(big.str())) << big.str();
}

TEST(JsonWriterTest, Int64ExtremesAreExact) {
  JsonWriter w;
  w.BeginArray();
  w.Int(std::numeric_limits<std::int64_t>::max());
  w.Int(std::numeric_limits<std::int64_t>::min());
  w.Int(0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[9223372036854775807,-9223372036854775808,0]");
  EXPECT_TRUE(JsonParses(w.str()));
}

TEST(JsonParsesTest, AcceptsValidDocuments) {
  EXPECT_TRUE(JsonParses(R"(  {"a": [1, -2.5, 3e-7], "b": null}  )"));
  EXPECT_TRUE(JsonParses(R"("just a string")"));
  EXPECT_TRUE(JsonParses("42"));
  EXPECT_TRUE(JsonParses(R"("esc é \n \\ ok")"));
}

TEST(JsonParsesTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonParses(""));
  EXPECT_FALSE(JsonParses("{"));
  EXPECT_FALSE(JsonParses(R"({"a":1,})"));
  EXPECT_FALSE(JsonParses(R"(["unterminated)"));
  EXPECT_FALSE(JsonParses("NaN"));
  EXPECT_FALSE(JsonParses("1 2"));
  EXPECT_FALSE(JsonParses(R"({"a" 1})"));
  EXPECT_FALSE(JsonParses(R"("bad \u00g1")"));
  EXPECT_FALSE(JsonParses(R"("bad escape \q")"));
}

}  // namespace
}  // namespace sjoin
