#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/core/dominance_prefilter_policy.h"
#include "sjoin/core/heeb_caching_policy.h"
#include "sjoin/core/heeb_join_policy.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/lfd_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/model_prob_policy.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/policies/random_policy.h"
#include "sjoin/policies/scenario_optimal_policies.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

TEST(ModelProbPolicyTest, StationaryMatchesHeebDecisions) {
  // Section 5.2: with stationary streams both are optimal — and produce
  // the same result counts (both rank by p, ties aside).
  auto dist = DiscreteDistribution::FromMasses(0, {0.45, 0.3, 0.15, 0.1});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  Rng rng(61);
  auto pair = SampleStreamPair(r, s, 500, rng);

  ModelProbPolicy model_prob(&r, &s);
  HeebJoinPolicy::Options options;
  options.alpha = 10.0;
  options.horizon = 120;
  HeebJoinPolicy heeb(&r, &s, options);

  JoinSimulator sim({.capacity = 3, .warmup = 20});
  EXPECT_EQ(sim.Run(pair.r, pair.s, model_prob).counted_results,
            sim.Run(pair.r, pair.s, heeb).counted_results);
}

TEST(ModelProbPolicyTest, MyopicUnderTrend) {
  // Under a trend, one-step greed undervalues tuples whose payoff is a
  // few steps out; HEEB should beat it.
  LinearTrendProcess r(1.0, -1.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                      0.0, 1.0, -10, 10));
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 2.0, -15, 15));
  Rng rng(62);
  std::int64_t heeb_total = 0;
  std::int64_t greedy_total = 0;
  JoinSimulator sim({.capacity = 6, .warmup = 30});
  for (int run = 0; run < 3; ++run) {
    auto pair = SampleStreamPair(r, s, 500, rng);
    ModelProbPolicy greedy(&r, &s);
    HeebJoinPolicy::Options options;
    options.alpha = ExpLifetime::AlphaForAverageLifetime(12.5);
    HeebJoinPolicy heeb(&r, &s, options);
    heeb_total += sim.Run(pair.r, pair.s, heeb).counted_results;
    greedy_total += sim.Run(pair.r, pair.s, greedy).counted_results;
  }
  EXPECT_GT(heeb_total, greedy_total);
}

TEST(A0CachingPolicyTest, StationaryOptimalEqualsHeeb) {
  StationaryProcess reference(
      DiscreteDistribution::FromMasses(0, {0.4, 0.3, 0.2, 0.1}));
  Rng rng(63);
  auto refs = SampleRealization(reference, 600, rng);
  A0CachingPolicy a0(&reference);
  HeebCachingPolicy::Options options;
  options.alpha = 8.0;
  options.horizon = 150;
  HeebCachingPolicy heeb(&reference, options);
  CacheSimulator sim({.capacity = 2, .warmup = 20});
  EXPECT_EQ(sim.Run(refs, a0).counted_hits,
            sim.Run(refs, heeb).counted_hits);
}

TEST(SmallestValuePolicyTest, OptimalForRightBoundedTrend) {
  // Section 5.3 caching: discarding the smallest value is the optimal
  // *online* policy (in expectation). Per realization it must stay below
  // the clairvoyant LFD, agree exactly with HEEB (whose ECB ranking is the
  // same total order by value), and beat LRU on average.
  LinearTrendProcess reference(
      1.0, 0.0, DiscreteDistribution::BoundedUniform(-6, 6));
  Rng rng(64);
  std::int64_t smallest_total = 0;
  std::int64_t lru_total = 0;
  for (int run = 0; run < 5; ++run) {
    auto refs = SampleRealization(reference, 400, rng);
    SmallestValueCachingPolicy smallest;
    LfdCachingPolicy lfd(refs);
    LruCachingPolicy lru;
    HeebCachingPolicy::Options options;
    options.alpha = 8.0;
    options.horizon = 40;
    HeebCachingPolicy heeb(&reference, options);
    CacheSimulator sim({.capacity = 5, .warmup = 0});
    auto smallest_result = sim.Run(refs, smallest);
    EXPECT_LE(smallest_result.hits, sim.Run(refs, lfd).hits) << run;
    EXPECT_EQ(smallest_result.hits, sim.Run(refs, heeb).hits) << run;
    smallest_total += smallest_result.hits;
    lru_total += sim.Run(refs, lru).hits;
  }
  EXPECT_GE(smallest_total, lru_total);
}

TEST(DistanceCachingPolicyTest, NearOptimalForZeroDriftWalk) {
  // Section 5.5: rank by distance from the current position. On sampled
  // realizations this one-shot-optimal rule should at least match HEEB's
  // walk table (they implement the same ranking) and beat random.
  RandomWalkProcess reference(
      DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  Rng rng(65);
  auto refs = SampleRealization(reference, 800, rng);

  DistanceCachingPolicy nearest;
  HeebCachingPolicy::Options options;
  options.mode = HeebCachingPolicy::Mode::kWalkTable;
  options.alpha = 10.0;
  options.horizon = 60;
  // Wide enough that every reachable candidate offset is tabulated, so the
  // two policies induce the same total order.
  options.walk_max_offset = 120;
  HeebCachingPolicy heeb(&reference, options);

  CacheSimulator sim({.capacity = 8, .warmup = 40});
  auto nearest_result = sim.Run(refs, nearest);
  auto heeb_result = sim.Run(refs, heeb);
  // Identical ranking => identical hits (ties broken the same way).
  EXPECT_EQ(nearest_result.counted_hits, heeb_result.counted_hits);
}

TEST(DominancePrefilterTest, OfflineStreamsResolveEveryDecision) {
  // With deterministic streams, joining ECBs are step functions; they are
  // often comparable, and when the dominated subset covers the eviction
  // budget the decision is optimal without the fallback.
  std::vector<Value> r = {1, 2, 3, 4, 1, 2, 3, 4, 1, 2};
  std::vector<Value> s = {4, 3, 2, 1, 4, 3, 2, 1, 4, 3};
  OfflineProcess r_process(r);
  OfflineProcess s_process(s);
  RandomPolicy fallback(1);
  DominancePrefilterPolicy policy(&r_process, &s_process, &fallback,
                                  {.horizon = 12});
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  sim.Run(r, s, policy);
  EXPECT_GT(policy.total_decisions(), 0);
  EXPECT_GT(policy.decisions_by_dominance(), 0);
}

TEST(DominancePrefilterTest, NeverWorseThanFallbackAloneOnStationary) {
  // On stationary streams all ECBs are comparable (total order by p), so
  // the prefilter resolves everything optimally.
  auto dist = DiscreteDistribution::FromMasses(0, {0.4, 0.3, 0.2, 0.1});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  Rng rng(66);
  auto pair = SampleStreamPair(r, s, 300, rng);

  RandomPolicy fallback(2);
  DominancePrefilterPolicy policy(&r, &s, &fallback, {.horizon = 40});
  RandomPolicy plain_random(2);

  JoinSimulator sim({.capacity = 3, .warmup = 10});
  auto with_prefilter = sim.Run(pair.r, pair.s, policy);
  auto random_alone = sim.Run(pair.r, pair.s, plain_random);
  EXPECT_GE(with_prefilter.counted_results, random_alone.counted_results);
  EXPECT_EQ(policy.decisions_by_dominance(), policy.total_decisions());
}

}  // namespace
}  // namespace sjoin
