#include "sjoin/core/heeb_join_policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

// Shared fixture: a TOWER-like trend configuration.
struct TrendConfig {
  TrendConfig()
      : r(1.0, -1.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 2.0, -10, 10)),
        s(1.0, 0.0,
          DiscreteDistribution::TruncatedDiscretizedNormal(0, 3.0, -15,
                                                           15)) {}
  LinearTrendProcess r;
  LinearTrendProcess s;
};

std::int64_t RunHeeb(const TrendConfig& config, HeebJoinPolicy::Mode mode,
                     const std::vector<Value>& rv,
                     const std::vector<Value>& sv, std::size_t capacity) {
  HeebJoinPolicy::Options options;
  options.mode = mode;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.0);
  options.horizon = 200;  // Generous so incremental drift is negligible.
  HeebJoinPolicy policy(&config.r, &config.s, options);
  JoinSimulator sim({.capacity = capacity, .warmup = 0});
  return sim.Run(rv, sv, policy).total_results;
}

// Property sweep: every efficient mode agrees with the direct definition,
// across seeds and cache sizes.
struct ModeSweepCase {
  HeebJoinPolicy::Mode mode;
  int seed;
  std::size_t cache;
};

class HeebModeEquivalenceTest
    : public ::testing::TestWithParam<ModeSweepCase> {};

TEST_P(HeebModeEquivalenceTest, MatchesDirect) {
  const ModeSweepCase& param = GetParam();
  TrendConfig config;
  Rng rng(static_cast<std::uint64_t>(param.seed));
  auto pair = SampleStreamPair(config.r, config.s, 300, rng);
  auto direct = RunHeeb(config, HeebJoinPolicy::Mode::kDirect, pair.r,
                        pair.s, param.cache);
  auto mode_result =
      RunHeeb(config, param.mode, pair.r, pair.s, param.cache);
  EXPECT_EQ(direct, mode_result);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HeebModeEquivalenceTest,
    ::testing::Values(
        ModeSweepCase{HeebJoinPolicy::Mode::kTimeIncremental, 11, 8},
        ModeSweepCase{HeebJoinPolicy::Mode::kTimeIncremental, 12, 3},
        ModeSweepCase{HeebJoinPolicy::Mode::kTimeIncremental, 13, 15},
        ModeSweepCase{HeebJoinPolicy::Mode::kTimeIncremental, 14, 8},
        ModeSweepCase{HeebJoinPolicy::Mode::kValueIncremental, 11, 8},
        ModeSweepCase{HeebJoinPolicy::Mode::kValueIncremental, 12, 3},
        ModeSweepCase{HeebJoinPolicy::Mode::kValueIncremental, 13, 15},
        ModeSweepCase{HeebJoinPolicy::Mode::kValueIncremental, 14, 8}));

TEST(HeebJoinPolicyTest, WindowedTimeIncrementalMatchesWindowedDirect) {
  // Section 7: the Corollary 3 recurrence carries over to sliding windows
  // unchanged (the window cap is a fixed absolute time); only the
  // arrival-time sum is truncated.
  TrendConfig config;
  Rng rng(15);
  auto pair = SampleStreamPair(config.r, config.s, 300, rng);
  HeebJoinPolicy::Options options;
  options.alpha = ExpLifetime::AlphaForAverageLifetime(12.0);
  options.horizon = 200;
  JoinSimulator sim({.capacity = 8, .warmup = 0, .window = Time{15}});

  options.mode = HeebJoinPolicy::Mode::kDirect;
  HeebJoinPolicy direct(&config.r, &config.s, options);
  options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
  HeebJoinPolicy incremental(&config.r, &config.s, options);
  EXPECT_EQ(sim.Run(pair.r, pair.s, direct).total_results,
            sim.Run(pair.r, pair.s, incremental).total_results);
}

TEST(HeebJoinPolicyTest, IncrementalAdvanceDeterministicAcrossReruns) {
  // The Corollary 3 sweep iterates the flat slot array and periodically
  // re-anchors through the refresh interval; rerunning the same inputs
  // must reproduce the exact same per-tuple scores — slot storage order
  // is an implementation detail that may not leak into results.
  TrendConfig config;
  Rng rng(31);
  auto pair = SampleStreamPair(config.r, config.s, 300, rng);
  auto run_once = [&](std::vector<std::pair<TupleId, double>>* trace) {
    HeebJoinPolicy::Options options;
    options.mode = HeebJoinPolicy::Mode::kTimeIncremental;
    options.alpha = ExpLifetime::AlphaForAverageLifetime(12.0);
    options.horizon = 200;
    options.refresh_interval = 4;  // Exercise the re-anchor path often.
    HeebJoinPolicy policy(&config.r, &config.s, options);
    policy.set_score_observer([trace](const Tuple& tuple, double score) {
      trace->emplace_back(tuple.id, score);
    });
    JoinSimulator sim({.capacity = 8, .warmup = 0});
    return sim.Run(pair.r, pair.s, policy).total_results;
  };
  std::vector<std::pair<TupleId, double>> first;
  std::vector<std::pair<TupleId, double>> second;
  auto first_total = run_once(&first);
  auto second_total = run_once(&second);
  EXPECT_EQ(first_total, second_total);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << "score " << i;
    EXPECT_EQ(first[i].second, second[i].second) << "score " << i;
  }
}

TEST(HeebJoinPolicyTest, WalkTableMatchesDirect) {
  RandomWalkProcess r(DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  RandomWalkProcess s(DiscreteDistribution::DiscretizedNormal(0.0, 1.0), 0);
  Rng rng(13);
  auto pair = SampleStreamPair(r, s, 200, rng);

  HeebJoinPolicy::Options options;
  options.alpha = 10.0;
  options.horizon = 60;

  options.mode = HeebJoinPolicy::Mode::kDirect;
  HeebJoinPolicy direct(&r, &s, options);
  options.mode = HeebJoinPolicy::Mode::kWalkTable;
  HeebJoinPolicy table(&r, &s, options);

  JoinSimulator sim({.capacity = 6, .warmup = 0});
  EXPECT_EQ(sim.Run(pair.r, pair.s, direct).total_results,
            sim.Run(pair.r, pair.s, table).total_results);
}

TEST(HeebJoinPolicyTest, StationaryHeebBehavesLikeProb) {
  // Section 5.2: stationary streams; HEEB must keep the tuples whose
  // values are most probable in the partner stream.
  auto dist = DiscreteDistribution::FromMasses(0, {0.6, 0.3, 0.1});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  HeebJoinPolicy::Options options;
  options.alpha = 8.0;
  HeebJoinPolicy policy(&r, &s, options);

  StreamHistory history_r({0, 2});
  StreamHistory history_s({1, 2});
  std::vector<Tuple> cached = {{0, StreamSide::kR, 0, 0},
                               {1, StreamSide::kS, 1, 0}};
  std::vector<Tuple> arrivals = {{2, StreamSide::kR, 2, 1},
                                 {3, StreamSide::kS, 2, 1}};
  PolicyContext ctx;
  ctx.now = 1;
  ctx.capacity = 2;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 2u);
  // Values 0 (p=0.6) and 1 (p=0.3) beat the two value-2 tuples (p=0.1).
  EXPECT_TRUE((retained[0] == 0 && retained[1] == 1) ||
              (retained[0] == 1 && retained[1] == 0));
}

TEST(HeebJoinPolicyTest, SlidingWindowSection7Example) {
  // Section 7: stationary streams; three candidates
  //   x1: p = 0.50, remaining life 1
  //   x2: p = 0.49, remaining life 50
  //   x3: p = 0.01, remaining life 51
  // PROB prefers x1 > x2; LIFE prefers x3 > x1; windowed HEEB should rank
  // x2 > x1 > x3.
  std::vector<double> masses(100, 0.0);
  masses[1] = 0.50;
  masses[2] = 0.49;
  masses[3] = 0.01;
  auto dist = DiscreteDistribution::FromMasses(0, masses);
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  HeebJoinPolicy::Options options;
  options.alpha = 10.0;
  options.horizon = 200;
  HeebJoinPolicy policy(&r, &s, options);

  constexpr Time kWindow = 51;
  constexpr Time kNow = 50;
  StreamHistory history_r(std::vector<Value>(kNow + 1, 99));
  StreamHistory history_s(std::vector<Value>(kNow + 1, 99));
  // Remaining life = arrival + window - now.
  std::vector<Tuple> cached = {{0, StreamSide::kR, 1, 0},    // x1: life 1.
                               {1, StreamSide::kR, 2, 49}};  // x2: life 50.
  std::vector<Tuple> arrivals = {{2, StreamSide::kR, 3, 50},  // x3: life 51.
                                 {3, StreamSide::kS, 99, 50}};
  PolicyContext ctx;
  ctx.now = kNow;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  ctx.window = kWindow;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0], 1u);  // x2 wins.

  // Widen the capacity to observe the full ranking.
  ctx.capacity = 2;
  retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 2u);
  EXPECT_EQ(retained[0], 1u);  // x2 first.
  EXPECT_EQ(retained[1], 0u);  // then x1; x3 loses.
}

TEST(HeebJoinPolicyTest, ExpiredTuplesScoreZero) {
  auto dist = DiscreteDistribution::FromMasses(0, {0.5, 0.5});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  HeebJoinPolicy::Options options;
  options.alpha = 5.0;
  HeebJoinPolicy policy(&r, &s, options);

  StreamHistory history_r({0, 0, 0});
  StreamHistory history_s({0, 0, 0});
  std::vector<Tuple> cached = {{0, StreamSide::kR, 0, 0}};  // Expired.
  std::vector<Tuple> arrivals = {{4, StreamSide::kR, 0, 2},
                                 {5, StreamSide::kS, 7, 2}};  // 7: p = 0.
  PolicyContext ctx;
  ctx.now = 2;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  ctx.window = 1;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_EQ(retained[0], 4u);  // Fresh value-0 tuple beats the expired one.
}

TEST(HeebJoinPolicyTest, BeatsProbOnTrendingStreams) {
  // The paper's headline: with a trend, HEEB over statistically-informed
  // predictions outperforms history-frequency heuristics.
  TrendConfig config;
  Rng rng(21);
  std::int64_t heeb_total = 0;
  std::int64_t prob_total = 0;
  for (int run = 0; run < 3; ++run) {
    auto pair = SampleStreamPair(config.r, config.s, 400, rng);
    heeb_total +=
        RunHeeb(config, HeebJoinPolicy::Mode::kDirect, pair.r, pair.s, 10);
    ProbPolicy prob;
    JoinSimulator sim({.capacity = 10, .warmup = 0});
    prob_total += sim.Run(pair.r, pair.s, prob).total_results;
  }
  EXPECT_GT(heeb_total, prob_total);
}

}  // namespace
}  // namespace sjoin
