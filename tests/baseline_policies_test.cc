#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/lfu_policy.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

bool Contains(const std::vector<TupleId>& ids, TupleId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(RandomPolicyTest, RespectsCapacityAndIsDeterministicPerSeed) {
  JoinSimulator sim({.capacity = 3, .warmup = 0});
  RandomPolicy a(42);
  RandomPolicy b(42);
  std::vector<Value> r = {1, 2, 3, 4, 5, 1, 2, 3};
  std::vector<Value> s = {5, 4, 3, 2, 1, 5, 4, 3};
  auto ra = sim.Run(r, s, a);
  auto rb = sim.Run(r, s, b);
  EXPECT_EQ(ra.total_results, rb.total_results);
}

TEST(RandomPolicyTest, ResetRestoresSeed) {
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  RandomPolicy policy(7);
  std::vector<Value> r = {1, 2, 3, 1, 2, 3};
  std::vector<Value> s = {3, 2, 1, 3, 2, 1};
  auto first = sim.Run(r, s, policy);
  auto second = sim.Run(r, s, policy);  // Run() calls Reset().
  EXPECT_EQ(first.total_results, second.total_results);
}

TEST(RandomPolicyTest, LifetimeAwareEvictsExpiredFirst) {
  // With assumed lifetime 0, any tuple older than the current step ranks
  // below every fresh arrival, so the cache only ever holds the two
  // newest tuples.
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  RandomPolicy policy(1, Time{0});
  auto result = sim.Run({1, 9, 1}, {8, 8, 7}, policy);
  EXPECT_EQ(result.total_results, 0);
}

TEST(ProbPolicyTest, KeepsTuplesWithFrequentPartnerValues) {
  ProbPolicy policy;
  policy.Reset();
  StreamHistory history_r({1, 2});
  StreamHistory history_s({7, 1});
  std::vector<Tuple> cached = {{0, StreamSide::kR, 1, 0},
                               {1, StreamSide::kS, 7, 0}};
  std::vector<Tuple> arrivals = {{2, StreamSide::kR, 2, 1},
                                 {3, StreamSide::kS, 1, 1}};
  PolicyContext ctx;
  ctx.now = 1;
  ctx.capacity = 2;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 2u);
  // Frequencies: R(1) -> 1 appears in S half the time (0.5);
  // S(1) -> 1 appears in R half the time (0.5); the others 0.
  EXPECT_TRUE(Contains(retained, 0));
  EXPECT_TRUE(Contains(retained, 3));
}

TEST(ProbPolicyTest, WindowedContextExpiresOldTuples) {
  ProbPolicy policy;
  policy.Reset();
  StreamHistory history_r({1, 1, 1});
  StreamHistory history_s({1, 1, 1});
  // R(1) from t=0 is outside window 1 at now=2; fresh R(1) is not.
  std::vector<Tuple> cached = {{0, StreamSide::kR, 1, 0}};
  std::vector<Tuple> arrivals = {{4, StreamSide::kR, 1, 2},
                                 {5, StreamSide::kS, 1, 2}};
  PolicyContext ctx;
  ctx.now = 2;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  ctx.window = 1;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  EXPECT_NE(retained[0], 0u);  // The expired tuple is discarded.
}

TEST(LifePolicyTest, EqualFrequencyPrefersLongerRemainingLife) {
  LifePolicy policy(/*lifetime=*/5);
  policy.Reset();
  StreamHistory history_r({1, 1, 1, 1});
  StreamHistory history_s({1, 2, 2, 2});
  // Same side, same value, different ages.
  std::vector<Tuple> cached = {{0, StreamSide::kR, 1, 0}};
  std::vector<Tuple> arrivals = {{6, StreamSide::kR, 1, 3},
                                 {7, StreamSide::kS, 2, 3}};
  PolicyContext ctx;
  ctx.now = 3;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  // R(1) tuples have partner frequency 1/4; the newer one has remaining
  // life 5 vs 2, so its p*l score wins. (S(2) has frequency 3/4 in R? No:
  // S tuples join R; value 2 appears 0 times in R.)
  EXPECT_EQ(retained[0], 6u);
}

TEST(LifePolicyTest, ScoresZeroOnceExpired) {
  JoinSimulator sim({.capacity = 2, .warmup = 0});
  LifePolicy policy(/*lifetime=*/1);
  auto result = sim.Run({1, 9, 9}, {8, 8, 1}, policy);
  // R(1)'s assumed life ends before S(1) arrives at t=2; LIFE evicted it
  // at t=1 in favor of fresh arrivals, so no results are produced.
  EXPECT_EQ(result.total_results, 0);
}

TEST(LifePolicyTest, WindowCapsAssumedLifetime) {
  LifePolicy policy(/*lifetime=*/100);
  policy.Reset();
  StreamHistory history_r({3, 3});
  StreamHistory history_s({3, 3});
  std::vector<Tuple> cached = {{0, StreamSide::kR, 3, 0}};
  std::vector<Tuple> arrivals = {{2, StreamSide::kR, 3, 1},
                                 {3, StreamSide::kS, 9, 1}};
  PolicyContext ctx;
  ctx.now = 1;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  ctx.window = 1;  // Effective lifetime becomes 1.
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  // Old R(3): remaining = 1 - 1 = 0 -> expired. New R(3) wins.
  EXPECT_EQ(retained[0], 2u);
}

TEST(PerfectLfuTest, RanksByGlobalFrequency) {
  std::vector<Value> sequence = {1, 1, 1, 2, 2, 3};
  PerfectLfuCachingPolicy policy(sequence);
  CachingContext ctx;
  std::vector<Value> cached = {2, 3};
  StreamHistory history({1});
  ctx.cached = &cached;
  ctx.referenced = 1;
  ctx.hit = false;
  ctx.capacity = 2;
  ctx.history = &history;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 2u);
  // Frequencies: 1 -> 0.5, 2 -> 1/3, 3 -> 1/6; keep {1, 2}.
  EXPECT_TRUE(std::find(retained.begin(), retained.end(), 1) !=
              retained.end());
  EXPECT_TRUE(std::find(retained.begin(), retained.end(), 2) !=
              retained.end());
}

}  // namespace
}  // namespace sjoin
