#include "sjoin/core/flow_expect_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/policies/opt_offline_policy.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/scripted_process.h"
#include "sjoin/stochastic/stationary_process.h"
#include "sjoin/stochastic/stream_sampler.h"

namespace sjoin {
namespace {

// Unique sentinel values standing for the paper's "-" tuples (they join
// nothing).
constexpr Value kNoMatchBase = -1000;

TEST(FlowExpectTest, KeepsHighProbabilityTupleOneStep) {
  // Trivial l=1 sanity: keep the tuple most likely to join next step.
  auto dist = DiscreteDistribution::FromMasses(0, {0.9, 0.1});
  StationaryProcess r(dist);
  StationaryProcess s(dist);
  FlowExpectPolicy policy(&r, &s, {.lookahead = 1});

  StreamHistory history_r({0});
  StreamHistory history_s({1});
  std::vector<Tuple> cached;
  std::vector<Tuple> arrivals = {{0, StreamSide::kR, 0, 0},
                                 {1, StreamSide::kS, 1, 0}};
  PolicyContext ctx;
  ctx.now = 0;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  // R(0) joins next S arrival with p=0.9; S(1) joins next R with p=0.1.
  EXPECT_EQ(retained[0], 0u);
}

// Section 3.4's counter-example. Cache holds one tuple; at t0 the cache
// contains an R tuple with value 1. Futures:
//   time   | new R tuple           | new S tuple
//   t0     | -                     | 2
//   t0+1   | 2                     | 3 w.p. 0.5 (- otherwise)
//   t0+2   | 3                     | 1 w.p. 0.8 (- otherwise)
//   t0+3   | 2 w.p. 0.5 (-)       | 1 w.p. 0.8 (- otherwise)
// Best predetermined sequence: keep R(1) forever (expected 1.6), so
// FlowExpect keeps R(1); but the adaptive strategy scores 1.75.
class Section34Fixture : public ::testing::Test {
 protected:
  Section34Fixture() {
    // t0 = 0 here.
    // The paper's "-" placeholders are realized as values that no other
    // tuple ever takes (10, 11, 12, 13 below), so they join nothing.
    std::vector<DiscreteDistribution> r_script;
    r_script.push_back(DiscreteDistribution::PointMass(kNoMatchBase));
    r_script.push_back(DiscreteDistribution::PointMass(2));
    r_script.push_back(DiscreteDistribution::PointMass(3));
    // R at t0+3: 2 w.p. 0.5, "-"(=10) otherwise.
    r_script.push_back(DiscreteDistribution::FromMasses(
        2, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));
    ScriptedProcess r(r_script);

    std::vector<DiscreteDistribution> s_script;
    s_script.push_back(DiscreteDistribution::PointMass(2));
    // S at t0+1: 3 w.p. 0.5, "-"(=11) otherwise.
    s_script.push_back(DiscreteDistribution::FromMasses(
        3, {0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5}));  // {3,.5;11,.5}
    // S at t0+2: 1 w.p. 0.8, "-"(=12) otherwise.
    s_script.push_back(DiscreteDistribution::FromMasses(
        1, {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.2}));
    // S at t0+3: 1 w.p. 0.8, "-"(=13) otherwise.
    s_script.push_back(DiscreteDistribution::FromMasses(
        1, {0.8, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            0.2}));
    ScriptedProcess s(s_script);

    r_process_ = r.Clone();
    s_process_ = s.Clone();
  }

  std::unique_ptr<StochasticProcess> r_process_;
  std::unique_ptr<StochasticProcess> s_process_;
};

TEST_F(Section34Fixture, FlowExpectKeepsCachedRTuple) {
  FlowExpectPolicy policy(r_process_.get(), s_process_.get(),
                          {.lookahead = 3});
  // Cache: R tuple with value 1 (arrived earlier, id 100). Arrivals at t0:
  // R "-" tuple and S tuple with value 2.
  StreamHistory history_r({kNoMatchBase});
  StreamHistory history_s({2});
  std::vector<Tuple> cached = {{100, StreamSide::kR, 1, -1}};
  std::vector<Tuple> arrivals = {{0, StreamSide::kR, kNoMatchBase, 0},
                                 {1, StreamSide::kS, 2, 0}};
  PolicyContext ctx;
  ctx.now = 0;
  ctx.capacity = 1;
  ctx.cached = &cached;
  ctx.arrivals = &arrivals;
  ctx.history_r = &history_r;
  ctx.history_s = &history_s;
  auto retained = policy.SelectRetained(ctx);
  ASSERT_EQ(retained.size(), 1u);
  // FlowExpect picks the predetermined sequence with expected benefit 1.6:
  // keep the cached R(1).
  EXPECT_EQ(retained[0], 100u);
}

TEST_F(Section34Fixture, AdaptiveStrategyBeatsBestPredeterminedSequence) {
  // Verify the example's arithmetic from the process definitions.
  StreamHistory empty;
  auto s1 = s_process_->Predict(empty, 1);
  auto s2 = s_process_->Predict(empty, 2);
  auto s3 = s_process_->Predict(empty, 3);
  auto r1 = r_process_->Predict(empty, 1);
  auto r3 = r_process_->Predict(empty, 3);

  // Sequence A: always keep cached R(1): joins S at t0+2 and t0+3.
  double seq_keep = s2.Prob(1) + s3.Prob(1);
  EXPECT_NEAR(seq_keep, 1.6, 1e-12);

  // Sequence B: take S(2) at t0, keep it: joins R(2) at t0+1 (certain) and
  // R at t0+3 with probability 0.5.
  double seq_take2 = r1.Prob(2) + r3.Prob(2);
  EXPECT_NEAR(seq_take2, 1.5, 1e-12);

  // Sequence C: take S(2), then replace with the S tuple at t0+1; expected
  // benefit 1 (at t0+1) + Pr{S_{t0+1}=3} * Pr{R_{t0+2}=3}.
  double seq_take_then_switch =
      r1.Prob(2) + s1.Prob(3) * 1.0;  // R at t0+2 is 3 with certainty.
  EXPECT_NEAR(seq_take_then_switch, 1.5, 1e-12);

  // Adaptive strategy: take S(2); at t0+1 switch only if the observed S
  // tuple is 3. Expected: 0.5 * (1 + 1) + 0.5 * (1 + 0.5) = 1.75.
  double adaptive = s1.Prob(3) * (r1.Prob(2) + 1.0) +
                    (1.0 - s1.Prob(3)) * (r1.Prob(2) + r3.Prob(2) * 1.0);
  EXPECT_NEAR(adaptive, 1.75, 1e-12);
  EXPECT_GT(adaptive, seq_keep);
}

TEST_F(Section34Fixture, DominancePruneKeepsSameDecision) {
  // The Theorem 3 prefilter only discards dominated candidates, so on the
  // Section 3.4 instance (three candidates with distinct benefit curves)
  // the decision must be identical with the prefilter on and off.
  for (bool prune : {false, true}) {
    FlowExpectPolicy policy(
        r_process_.get(), s_process_.get(),
        {.lookahead = 3, .dominance_prune = prune});
    StreamHistory history_r({kNoMatchBase});
    StreamHistory history_s({2});
    std::vector<Tuple> cached = {{100, StreamSide::kR, 1, -1}};
    std::vector<Tuple> arrivals = {{0, StreamSide::kR, kNoMatchBase, 0},
                                   {1, StreamSide::kS, 2, 0}};
    PolicyContext ctx;
    ctx.now = 0;
    ctx.capacity = 1;
    ctx.cached = &cached;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;
    auto retained = policy.SelectRetained(ctx);
    ASSERT_EQ(retained.size(), 1u) << "prune=" << prune;
    EXPECT_EQ(retained[0], 100u) << "prune=" << prune;
  }
}

TEST(FlowExpectTest, PersistentTemplatesMatchFreshPolicyEachStep) {
  // Template reuse must be invisible: a policy carried across steps (warm
  // graph templates, cached topological order, reused buffers) must make
  // exactly the decision a freshly constructed policy makes on the same
  // context.
  auto dist =
      DiscreteDistribution::FromMasses(0, {0.35, 0.25, 0.2, 0.12, 0.08});
  StationaryProcess r_process(dist);
  StationaryProcess s_process(dist);
  Rng rng(77);
  Time len = 40;
  StreamPair pair = SampleStreamPair(r_process, s_process, len, rng);

  FlowExpectPolicy persistent(&r_process, &s_process, {.lookahead = 4});
  std::vector<Tuple> cache;
  StreamHistory history_r;
  StreamHistory history_s;
  for (Time t = 0; t < len; ++t) {
    Value rv = pair.r[static_cast<std::size_t>(t)];
    Value sv = pair.s[static_cast<std::size_t>(t)];
    history_r.Append(rv);
    history_s.Append(sv);
    std::vector<Tuple> arrivals = {
        Tuple{static_cast<TupleId>(2 * t), StreamSide::kR, rv, t},
        Tuple{static_cast<TupleId>(2 * t + 1), StreamSide::kS, sv, t}};
    PolicyContext ctx;
    ctx.now = t;
    ctx.capacity = 3;
    ctx.cached = &cache;
    ctx.arrivals = &arrivals;
    ctx.history_r = &history_r;
    ctx.history_s = &history_s;

    std::vector<TupleId> warm = persistent.SelectRetained(ctx);
    FlowExpectPolicy fresh(&r_process, &s_process, {.lookahead = 4});
    std::vector<TupleId> cold = fresh.SelectRetained(ctx);
    ASSERT_EQ(warm, cold) << "step " << t;

    std::vector<Tuple> next;
    next.reserve(warm.size());
    for (TupleId id : warm) {
      for (const Tuple& tuple : cache) {
        if (tuple.id == id) next.push_back(tuple);
      }
      for (const Tuple& tuple : arrivals) {
        if (tuple.id == id) next.push_back(tuple);
      }
    }
    cache = std::move(next);
  }
}

TEST(FlowExpectTest, OfflineStreamsMatchOptOffline) {
  // Section 5.1: with deterministic streams FlowExpect degenerates into
  // OPT-offline; with look-ahead covering the whole stream, the counts
  // must match the optimum.
  Rng rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    Time len = 12;
    std::vector<Value> r, s;
    for (Time t = 0; t < len; ++t) {
      r.push_back(rng.UniformInt(0, 3));
      s.push_back(rng.UniformInt(0, 3));
    }
    OfflineProcess r_process(r);
    OfflineProcess s_process(s);
    FlowExpectPolicy flow_expect(&r_process, &s_process,
                                 {.lookahead = len});
    OptOfflinePolicy opt(r, s, 2);
    JoinSimulator sim({.capacity = 2, .warmup = 0});
    auto fe_result = sim.Run(r, s, flow_expect);
    auto opt_result = sim.Run(r, s, opt);
    EXPECT_EQ(fe_result.total_results, opt_result.total_results)
        << "trial " << trial;
  }
}

TEST(FlowExpectTest, LongerLookaheadHelpsOnDelayedPayoff) {
  // A myopic l=1 FlowExpect cannot see a payoff two steps out.
  //   R: 5  -  -  5 ... keeping S(5) (arriving t0) pays at t=3 only.
  std::vector<Value> r = {9, 7, 7, 5};
  std::vector<Value> s = {5, 8, 8, 8};
  OfflineProcess r_process(r);
  OfflineProcess s_process(s);
  JoinSimulator sim({.capacity = 1, .warmup = 0});

  FlowExpectPolicy myopic(&r_process, &s_process, {.lookahead = 1});
  FlowExpectPolicy deep(&r_process, &s_process, {.lookahead = 4});
  auto myopic_result = sim.Run(r, s, myopic);
  auto deep_result = sim.Run(r, s, deep);
  EXPECT_GE(deep_result.total_results, myopic_result.total_results);
  EXPECT_EQ(deep_result.total_results, 1);
}

}  // namespace
}  // namespace sjoin
