// Differential suite for the offline-OPT flow formulation against
// exhaustive eviction search on tiny instances.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialOptTest, OfflineOptMatchesBruteForce) {
  const DifferentialSuite* suite = FindDifferentialSuite("offline_opt");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
