// ShardedStreamEngine: value-domain sharding must be invisible in the
// output — bit-identical per-step traces, totals and telemetry for any
// shard count AND any worker-team size (inline, fewer/equal/more threads
// than shards, pinned or not) — for scored (shard-scorable) policies;
// policies without shard scoring fall back to the serial engine through
// the same API; the façades plumb Options::shards / threads / pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/common/thread_pool.h"
#include "sjoin/engine/cache_simulator.h"
#include "sjoin/engine/join_simulator.h"
#include "sjoin/engine/sharded_stream_engine.h"
#include "sjoin/engine/step_observer.h"
#include "sjoin/engine/stream_engine.h"
#include "sjoin/multi/multi_join_simulator.h"
#include "sjoin/policies/life_policy.h"
#include "sjoin/policies/lru_policy.h"
#include "sjoin/policies/prob_policy.h"
#include "sjoin/policies/random_policy.h"

namespace sjoin {
namespace {

std::vector<Value> SampleValues(Time len, Value domain, Rng& rng) {
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    out.push_back(rng.UniformInt(0, domain - 1));
  }
  return out;
}

/// Records retained ids and cache contents per step for exact comparison.
class TraceObserver final : public StepObserver {
 public:
  void OnStep(const EngineStepView& step) override {
    retained_.push_back(*step.retained);
    std::vector<std::int64_t> snapshot;
    snapshot.reserve(step.cache->size());
    for (const StreamTuple& tuple : *step.cache) snapshot.push_back(tuple.id);
    cache_ids_.push_back(std::move(snapshot));
    produced_.push_back(step.produced);
  }

  const std::vector<std::vector<TupleId>>& retained() const {
    return retained_;
  }
  const std::vector<std::vector<std::int64_t>>& cache_ids() const {
    return cache_ids_;
  }
  const std::vector<std::int64_t>& produced() const { return produced_; }

 private:
  std::vector<std::vector<TupleId>> retained_;
  std::vector<std::vector<std::int64_t>> cache_ids_;
  std::vector<std::int64_t> produced_;
};

void ExpectShardedMatchesSerial(const StreamEngine::Options& options,
                                const std::vector<Value>& r,
                                const std::vector<Value>& s,
                                ReplacementPolicy& policy) {
  BinaryPolicyAdapter adapter(&policy);

  StreamEngine serial(StreamTopology::Binary(), options);
  TraceObserver serial_trace;
  PerfObserver serial_perf;
  EngineRunResult serial_run =
      serial.Run({&r, &s}, adapter, {&serial_perf, &serial_trace});

  for (int shards : {1, 2, 4, 8}) {
    ShardedStreamEngine engine(StreamTopology::Binary(),
                               {.capacity = options.capacity,
                                .warmup = options.warmup,
                                .window = options.window,
                                .shards = shards});
    TraceObserver trace;
    PerfObserver perf;
    EngineRunResult run = engine.Run({&r, &s}, adapter, {&perf, &trace});

    EXPECT_EQ(serial_run.total_results, run.total_results) << shards;
    EXPECT_EQ(serial_run.counted_results, run.counted_results) << shards;
    EXPECT_EQ(serial_perf.telemetry().peak_candidates,
              perf.telemetry().peak_candidates)
        << shards;
    EXPECT_EQ(serial_perf.telemetry().steps, perf.telemetry().steps)
        << shards;
    EXPECT_EQ(serial_trace.retained(), trace.retained()) << shards;
    EXPECT_EQ(serial_trace.cache_ids(), trace.cache_ids()) << shards;
    EXPECT_EQ(serial_trace.produced(), trace.produced()) << shards;
  }
}

TEST(ShardedStreamEngineTest, ScoredPoliciesMatchSerialBitForBit) {
  Rng rng(17);
  // Capacity 40 engages the per-shard value->count indexes (unwindowed at
  // capacity >= kValueIndexMinCapacity); capacity 3 covers linear scans.
  for (std::size_t capacity : {std::size_t{3}, std::size_t{40}}) {
    for (int windowed = 0; windowed < 2; ++windowed) {
      std::vector<Value> r = SampleValues(300, 12, rng);
      std::vector<Value> s = SampleValues(300, 12, rng);
      StreamEngine::Options options{.capacity = capacity, .warmup = 20};
      if (windowed != 0) options.window = 9;

      ProbPolicy prob;
      ExpectShardedMatchesSerial(options, r, s, prob);
      LifePolicy life(7);
      ExpectShardedMatchesSerial(options, r, s, life);
    }
  }
}

TEST(ShardedStreamEngineTest, NonScorablePolicyFallsBackToSerial) {
  Rng rng(23);
  std::vector<Value> r = SampleValues(200, 8, rng);
  std::vector<Value> s = SampleValues(200, 8, rng);
  // RandomPolicy has no shard scoring: shards = 4 must silently run the
  // serial engine, reproducing the serial run exactly (Reset() restores
  // the policy's internal rng).
  RandomPolicy random(11, std::nullopt);
  ExpectShardedMatchesSerial({.capacity = 5, .warmup = 10}, r, s, random);
}

TEST(ShardedStreamEngineTest, FacadeShardsOptionIsBitIdentical) {
  Rng rng(31);
  std::vector<Value> r = SampleValues(250, 10, rng);
  std::vector<Value> s = SampleValues(250, 10, rng);

  ProbPolicy prob;
  JoinSimulator::Options serial_options{.capacity = 6, .warmup = 12};
  JoinRunResult serial = JoinSimulator(serial_options).Run(r, s, prob);
  JoinSimulator::Options sharded_options = serial_options;
  sharded_options.shards = 4;
  JoinRunResult sharded = JoinSimulator(sharded_options).Run(r, s, prob);
  EXPECT_EQ(serial.total_results, sharded.total_results);
  EXPECT_EQ(serial.counted_results, sharded.counted_results);
  EXPECT_EQ(serial.telemetry.peak_candidates,
            sharded.telemetry.peak_candidates);

  // The caching reduction (with its decided-step hit fast path) through
  // CacheSimulator::Options::shards.
  std::vector<Value> references = SampleValues(300, 20, rng);
  LruCachingPolicy lru;
  CacheRunResult cache_serial =
      CacheSimulator({.capacity = 8, .warmup = 10}).Run(references, lru);
  CacheRunResult cache_sharded =
      CacheSimulator({.capacity = 8, .warmup = 10, .shards = 4})
          .Run(references, lru);
  EXPECT_EQ(cache_serial.hits, cache_sharded.hits);
  EXPECT_EQ(cache_serial.misses, cache_sharded.misses);
  EXPECT_EQ(cache_serial.counted_hits, cache_sharded.counted_hits);
  EXPECT_EQ(cache_serial.counted_misses, cache_sharded.counted_misses);

  // MultiJoinSimulator plumbs shards too; its policies are EnginePolicy
  // implementations without shard scoring, so this exercises the serial
  // fallback end to end through the multi façade.
  std::vector<std::vector<Value>> streams{SampleValues(150, 6, rng),
                                          SampleValues(150, 6, rng),
                                          SampleValues(150, 6, rng)};
  class KeepNewest final : public EnginePolicy {
   public:
    std::vector<TupleId> SelectRetained(const EngineContext& ctx) override {
      std::vector<TupleId> ids;
      for (const StreamTuple& t : *ctx.cached) ids.push_back(t.id);
      for (const StreamTuple& t : *ctx.arrivals) ids.push_back(t.id);
      std::sort(ids.begin(), ids.end(), std::greater<TupleId>());
      if (ids.size() > ctx.capacity) ids.resize(ctx.capacity);
      return ids;
    }
    const char* name() const override { return "keep-newest"; }
  } keep_newest;
  std::vector<std::pair<int, int>> edges{{0, 1}, {1, 2}};
  MultiJoinRunResult multi_serial =
      MultiJoinSimulator(3, edges, {.capacity = 5}).Run(streams, keep_newest);
  MultiJoinRunResult multi_sharded =
      MultiJoinSimulator(3, edges, {.capacity = 5, .shards = 4})
          .Run(streams, keep_newest);
  EXPECT_EQ(multi_serial.total_results, multi_sharded.total_results);
  EXPECT_EQ(multi_serial.counted_results, multi_sharded.counted_results);
}

TEST(ShardedStreamEngineTest, ThreadsAreBitIdenticalAtEveryTeamSize) {
  Rng rng(53);
  // Cross worker-team sizes with both cache regimes: threads == 1 is the
  // inline path, 2 folds shards onto workers, 4 is one worker per shard,
  // and 8 leaves idle workers. All must reproduce the serial trace
  // exactly — the parallel merge cascade and the shard slices may not
  // perturb the (score, arrival, id) order.
  for (std::size_t capacity : {std::size_t{3}, std::size_t{40}}) {
    std::vector<Value> r = SampleValues(300, 12, rng);
    std::vector<Value> s = SampleValues(300, 12, rng);
    ProbPolicy prob;
    BinaryPolicyAdapter adapter(&prob);
    StreamEngine::Options options{.capacity = capacity, .warmup = 20};

    StreamEngine serial(StreamTopology::Binary(), options);
    TraceObserver serial_trace;
    PerfObserver serial_perf;
    EngineRunResult serial_run =
        serial.Run({&r, &s}, adapter, {&serial_perf, &serial_trace});

    for (int threads : {1, 2, 4, 8}) {
      ShardedStreamEngine engine(StreamTopology::Binary(),
                                 {.capacity = options.capacity,
                                  .warmup = options.warmup,
                                  .shards = 4,
                                  .threads = threads});
      TraceObserver trace;
      PerfObserver perf;
      EngineRunResult run = engine.Run({&r, &s}, adapter, {&perf, &trace});

      EXPECT_EQ(serial_run.total_results, run.total_results) << threads;
      EXPECT_EQ(serial_run.counted_results, run.counted_results) << threads;
      EXPECT_EQ(serial_perf.telemetry().peak_candidates,
                perf.telemetry().peak_candidates)
          << threads;
      EXPECT_EQ(serial_trace.retained(), trace.retained()) << threads;
      EXPECT_EQ(serial_trace.cache_ids(), trace.cache_ids()) << threads;
      EXPECT_EQ(serial_trace.produced(), trace.produced()) << threads;
    }
  }
}

TEST(ShardedStreamEngineTest, BatchedObserverDeliveryMatchesClassic) {
  // A PerfObserver-only chain permits batched delivery (scalar views
  // buffered, flushed at batch boundaries); a TraceObserver in the chain
  // forces classic per-step delivery. Both modes must agree on totals and
  // telemetry with the serial engine.
  Rng rng(59);
  std::vector<Value> r = SampleValues(400, 10, rng);
  std::vector<Value> s = SampleValues(400, 10, rng);
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);

  StreamEngine serial(StreamTopology::Binary(), {.capacity = 6, .warmup = 15});
  PerfObserver serial_perf;
  EngineRunResult serial_run = serial.Run({&r, &s}, adapter, {&serial_perf});

  ShardedStreamEngine engine(
      StreamTopology::Binary(),
      {.capacity = 6, .warmup = 15, .shards = 4, .threads = 2});
  // Batched: PerfObserver alone opts in via AllowsBatchedSteps().
  ASSERT_TRUE(PerfObserver().AllowsBatchedSteps());
  PerfObserver batched_perf;
  EngineRunResult batched = engine.Run({&r, &s}, adapter, {&batched_perf});
  EXPECT_EQ(serial_run.total_results, batched.total_results);
  EXPECT_EQ(serial_run.counted_results, batched.counted_results);
  EXPECT_EQ(serial_perf.telemetry().steps, batched_perf.telemetry().steps);
  EXPECT_EQ(serial_perf.telemetry().peak_candidates,
            batched_perf.telemetry().peak_candidates);

  // Classic: the trace observer (needs pointer fields) disables batching
  // for the whole chain; the perf numbers must come out the same anyway.
  PerfObserver classic_perf;
  TraceObserver trace;
  ASSERT_FALSE(trace.AllowsBatchedSteps());
  EngineRunResult classic =
      engine.Run({&r, &s}, adapter, {&classic_perf, &trace});
  EXPECT_EQ(serial_run.total_results, classic.total_results);
  EXPECT_EQ(serial_perf.telemetry().steps, classic_perf.telemetry().steps);
  EXPECT_EQ(serial_perf.telemetry().peak_candidates,
            classic_perf.telemetry().peak_candidates);
}

TEST(ShardedStreamEngineTest, PinnedThreadsAreBitIdentical) {
  // Affinity is a best-effort placement hint; output must not change.
  Rng rng(61);
  std::vector<Value> r = SampleValues(200, 9, rng);
  std::vector<Value> s = SampleValues(200, 9, rng);
  ProbPolicy prob;
  JoinRunResult serial = JoinSimulator({.capacity = 6}).Run(r, s, prob);
  JoinSimulator::Options options{.capacity = 6};
  options.shards = 4;
  options.threads = 4;
  options.pin_threads = true;
  JoinRunResult pinned = JoinSimulator(options).Run(r, s, prob);
  EXPECT_EQ(serial.total_results, pinned.total_results);
  EXPECT_EQ(serial.counted_results, pinned.counted_results);
}

TEST(ShardedStreamEngineTest, ExternalPoolIsSharedAndReusable) {
  Rng rng(43);
  std::vector<Value> r = SampleValues(200, 9, rng);
  std::vector<Value> s = SampleValues(200, 9, rng);
  ProbPolicy prob;

  JoinRunResult serial = JoinSimulator({.capacity = 6}).Run(r, s, prob);

  // Since the persistent-worker rework the pool is a legacy thread-count
  // hint: the engine no longer submits step work to it, but a configured
  // pool still caps the worker-team size (here: 2 workers for 4 shards).
  // Results stay bit-identical and the simulator stays reusable.
  ThreadPool pool(2);
  JoinSimulator::Options options{.capacity = 6};
  options.shards = 4;
  options.pool = &pool;
  JoinSimulator sim(options);
  for (int run = 0; run < 3; ++run) {
    JoinRunResult sharded = sim.Run(r, s, prob);
    EXPECT_EQ(serial.total_results, sharded.total_results) << run;
    EXPECT_EQ(serial.counted_results, sharded.counted_results) << run;
  }
}

TEST(ShardedStreamEngineTest, EngineIsReusableAcrossRuns) {
  Rng rng(47);
  std::vector<Value> r = SampleValues(150, 8, rng);
  std::vector<Value> s = SampleValues(150, 8, rng);
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);
  ShardedStreamEngine engine(StreamTopology::Binary(),
                             {.capacity = 6, .warmup = 8, .shards = 3});
  EngineRunResult first = engine.Run({&r, &s}, adapter);
  EngineRunResult second = engine.Run({&r, &s}, adapter);
  EXPECT_EQ(first.total_results, second.total_results);
  EXPECT_EQ(first.counted_results, second.counted_results);
}

TEST(ShardedStreamEngineTest, DefaultThreadsIsBoundedByShards) {
  EXPECT_EQ(ShardedStreamEngine::DefaultThreads(1), 1);
  EXPECT_GE(ShardedStreamEngine::DefaultThreads(8), 1);
  EXPECT_LE(ShardedStreamEngine::DefaultThreads(8), 8);
}

// ---------------------------------------------------------------------------
// Skew-adaptive partitioning (Options::adaptive)

/// A Zipf-skewed value stream: value v with mass ~ (v+1)^-s over
/// [0, domain). The hot head makes the static hash partition lopsided,
/// which is what forces the rebalancer to act.
std::vector<Value> SampleZipfValues(Time len, Value domain, double s,
                                    Rng& rng) {
  std::vector<double> cdf(static_cast<std::size_t>(domain));
  double total = 0.0;
  for (Value v = 0; v < domain; ++v) {
    total += std::pow(static_cast<double>(v + 1), -s);
    cdf[static_cast<std::size_t>(v)] = total;
  }
  std::vector<Value> out;
  out.reserve(static_cast<std::size_t>(len));
  for (Time t = 0; t < len; ++t) {
    double u = rng.UniformReal() * total;
    Value v = 0;
    while (cdf[static_cast<std::size_t>(v)] < u && v + 1 < domain) ++v;
    out.push_back(v);
  }
  return out;
}

TEST(ShardedStreamEngineTest, AdaptiveRunsMatchSerialBitForBit) {
  Rng rng(67);
  for (std::size_t capacity : {std::size_t{4}, std::size_t{40}}) {
    std::vector<Value> r = SampleZipfValues(400, 24, 1.2, rng);
    std::vector<Value> s = SampleZipfValues(400, 24, 1.2, rng);
    ProbPolicy prob;
    BinaryPolicyAdapter adapter(&prob);
    StreamEngine::Options options{.capacity = capacity, .warmup = 20};

    StreamEngine serial(StreamTopology::Binary(), options);
    TraceObserver serial_trace;
    EngineRunResult serial_run = serial.Run({&r, &s}, adapter, {&serial_trace});

    for (int shards : {2, 4, 8}) {
      for (int threads : {1, 4}) {
        ShardedStreamEngine engine(
            StreamTopology::Binary(),
            {.capacity = capacity,
             .warmup = options.warmup,
             .shards = shards,
             .threads = threads,
             .adaptive = {.enabled = true, .interval = 16}});
        TraceObserver trace;
        EngineRunResult run = engine.Run({&r, &s}, adapter, {&trace});

        EXPECT_EQ(serial_run.total_results, run.total_results)
            << shards << "x" << threads;
        EXPECT_EQ(serial_run.counted_results, run.counted_results)
            << shards << "x" << threads;
        EXPECT_EQ(serial_trace.retained(), trace.retained())
            << shards << "x" << threads;
        EXPECT_EQ(serial_trace.cache_ids(), trace.cache_ids())
            << shards << "x" << threads;
        EXPECT_EQ(serial_trace.produced(), trace.produced())
            << shards << "x" << threads;

        // The skewed stream must actually engage the machinery: windows
        // were evaluated, and — at shard counts where the hot head
        // clearly exceeds the 1.5x-mean trigger — at least one rebalance
        // and its migration epoch fired. (At 2 shards the hot shard's
        // share hovers near the threshold, so engagement there would be
        // an assertion about the trigger constant, not the machinery.)
        const AdaptiveShardStats& stats = engine.adaptive_stats();
        EXPECT_EQ(stats.partitions, shards);
        EXPECT_GT(stats.windows, 0) << shards << "x" << threads;
        EXPECT_EQ(stats.map_version,
                  static_cast<std::uint64_t>(stats.rebalances));
        ASSERT_NE(engine.workers(), nullptr);
        if (shards >= 4) {
          EXPECT_GT(stats.rebalances, 0) << shards << "x" << threads;
          EXPECT_GT(
              engine.workers()->epochs(ShardWorkers::EpochKind::kMigration), 0)
              << shards << "x" << threads;
        }
      }
    }
  }
}

TEST(ShardedStreamEngineTest, AdaptiveRerunsReproduceTheRebalanceHistory) {
  Rng rng(71);
  std::vector<Value> r = SampleZipfValues(350, 20, 1.3, rng);
  std::vector<Value> s = SampleZipfValues(350, 20, 1.3, rng);
  ProbPolicy prob;
  BinaryPolicyAdapter adapter(&prob);

  ShardedStreamEngine engine(
      StreamTopology::Binary(),
      {.capacity = 6,
       .warmup = 10,
       .shards = 4,
       .threads = 2,
       .adaptive = {.enabled = true, .interval = 8}});
  EngineRunResult first = engine.Run({&r, &s}, adapter);
  ASSERT_NE(engine.adaptive_map(), nullptr);
  std::vector<AdaptivePartitionMap::RebalanceAction> history =
      engine.adaptive_map()->history();
  AdaptiveShardStats stats = engine.adaptive_stats();
  ASSERT_GT(stats.rebalances, 0);

  // Rerun on the reused engine: same trace, action-for-action identical
  // rebalance history (the map is Reset, then every decision replays).
  EngineRunResult second = engine.Run({&r, &s}, adapter);
  EXPECT_EQ(first.total_results, second.total_results);
  EXPECT_EQ(first.counted_results, second.counted_results);
  EXPECT_EQ(engine.adaptive_map()->history(), history);
  EXPECT_EQ(engine.adaptive_stats().windows, stats.windows);
  EXPECT_EQ(engine.adaptive_stats().rebalances, stats.rebalances);
  EXPECT_EQ(engine.adaptive_stats().static_ratio_sum, stats.static_ratio_sum);
  EXPECT_EQ(engine.adaptive_stats().adaptive_ratio_sum,
            stats.adaptive_ratio_sum);

  // A fresh engine with the same options reproduces it too.
  ShardedStreamEngine fresh(
      StreamTopology::Binary(),
      {.capacity = 6,
       .warmup = 10,
       .shards = 4,
       .threads = 2,
       .adaptive = {.enabled = true, .interval = 8}});
  fresh.Run({&r, &s}, adapter);
  ASSERT_NE(fresh.adaptive_map(), nullptr);
  EXPECT_EQ(fresh.adaptive_map()->history(), history);
}

TEST(ShardedStreamEngineTest, AdaptiveSerialFallbackReportsNoStats) {
  // A non-decomposable policy falls back to the serial engine even with
  // adaptive on; the run must report zeroed adaptive telemetry rather
  // than stale numbers from an earlier adaptive run.
  Rng rng(73);
  std::vector<Value> r = SampleZipfValues(200, 16, 1.2, rng);
  std::vector<Value> s = SampleZipfValues(200, 16, 1.2, rng);
  ShardedStreamEngine engine(
      StreamTopology::Binary(),
      {.capacity = 5,
       .shards = 4,
       .adaptive = {.enabled = true, .interval = 8}});

  ProbPolicy prob;
  BinaryPolicyAdapter scored(&prob);
  engine.Run({&r, &s}, scored);
  ASSERT_GT(engine.adaptive_stats().windows, 0);

  RandomPolicy random(11, std::nullopt);
  BinaryPolicyAdapter unscored(&random);
  engine.Run({&r, &s}, unscored);
  EXPECT_EQ(engine.adaptive_stats().windows, 0);
  EXPECT_EQ(engine.adaptive_stats().rebalances, 0);
  EXPECT_EQ(engine.adaptive_stats().map_version, 0u);
}

TEST(ShardedStreamEngineTest, AdaptiveFacadePlumbsOptionsAndStats) {
  Rng rng(79);
  std::vector<Value> r = SampleZipfValues(300, 20, 1.2, rng);
  std::vector<Value> s = SampleZipfValues(300, 20, 1.2, rng);
  ProbPolicy prob;

  JoinRunResult serial = JoinSimulator({.capacity = 6, .warmup = 10})
                             .Run(r, s, prob);
  JoinSimulator::Options options{.capacity = 6, .warmup = 10};
  options.shards = 4;
  options.adaptive_shards = true;
  options.adaptive_interval = 16;
  JoinRunResult adaptive = JoinSimulator(options).Run(r, s, prob);
  EXPECT_EQ(serial.total_results, adaptive.total_results);
  EXPECT_EQ(serial.counted_results, adaptive.counted_results);
  EXPECT_GT(adaptive.adaptive.windows, 0);
  EXPECT_EQ(adaptive.adaptive.partitions, 4);
  // The serial run never touched the adaptive machinery.
  EXPECT_EQ(serial.adaptive.windows, 0);

  // CacheSimulator::Options plumb the same pair.
  std::vector<Value> references = SampleZipfValues(300, 24, 1.2, rng);
  LruCachingPolicy lru;
  CacheRunResult cache_serial =
      CacheSimulator({.capacity = 8, .warmup = 10}).Run(references, lru);
  CacheRunResult cache_adaptive =
      CacheSimulator({.capacity = 8,
                      .warmup = 10,
                      .shards = 4,
                      .adaptive_shards = true,
                      .adaptive_interval = 16})
          .Run(references, lru);
  EXPECT_EQ(cache_serial.hits, cache_adaptive.hits);
  EXPECT_EQ(cache_serial.misses, cache_adaptive.misses);
  EXPECT_EQ(cache_serial.counted_hits, cache_adaptive.counted_hits);
  EXPECT_EQ(cache_serial.counted_misses, cache_adaptive.counted_misses);
}

}  // namespace
}  // namespace sjoin
