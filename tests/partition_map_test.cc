// AdaptivePartitionMap: the deterministic rebalancer behind skew-adaptive
// sharding. These tests script per-bucket load histories and pin the exact
// decisions — split/coalesce choices, no-op stability on balanced load,
// convergence to a fixed point on a stationary hot spot, the P=2
// redistribute fallback — plus the structural invariants (strictly
// increasing bounds covering the bucket space, PartitionOf consistent
// with bounds) and bitwise rerun determinism of the history.

#include "sjoin/engine/partition_map.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace sjoin {
namespace {

/// Every structural invariant the engine relies on: bounds form a strict
/// chain over [0, num_buckets], and the value->partition path agrees with
/// them.
void ExpectInvariants(const AdaptivePartitionMap& map) {
  const std::vector<std::size_t>& bounds = map.bounds();
  ASSERT_EQ(bounds.size(), map.num_partitions() + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), map.num_buckets());
  for (std::size_t p = 0; p + 1 < bounds.size(); ++p) {
    EXPECT_LT(bounds[p], bounds[p + 1]);
  }
  for (Value v = -300; v < 300; ++v) {
    std::size_t bucket = map.BucketOf(v);
    ASSERT_LT(bucket, map.num_buckets());
    std::size_t partition = map.PartitionOf(v);
    ASSERT_LT(partition, map.num_partitions());
    EXPECT_GE(bucket, bounds[partition]) << "v=" << v;
    EXPECT_LT(bucket, bounds[partition + 1]) << "v=" << v;
  }
}

TEST(AdaptivePartitionMapTest, ConstructionRoundsBucketsAndSplitsEvenly) {
  // 100 rounds up to 128; 4 partitions of 32 buckets each.
  AdaptivePartitionMap map({.partitions = 4, .num_buckets = 100});
  EXPECT_EQ(map.num_buckets(), 128u);
  EXPECT_EQ(map.num_partitions(), 4u);
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 32, 64, 96, 128}));
  EXPECT_EQ(map.version(), 0u);
  ExpectInvariants(map);

  // The floor: at least 4 buckets per partition even when num_buckets is
  // tiny, and the count stays a power of two.
  AdaptivePartitionMap floor({.partitions = 6, .num_buckets = 1});
  EXPECT_GE(floor.num_buckets(), 24u);
  EXPECT_EQ(floor.num_buckets() & (floor.num_buckets() - 1), 0u);
  ExpectInvariants(floor);
}

TEST(AdaptivePartitionMapTest, BalancedLoadNeverRebalances) {
  AdaptivePartitionMap map({.partitions = 4, .num_buckets = 16});
  std::vector<std::int64_t> load(map.num_buckets(), 7);
  for (Time t = 0; t < 10; ++t) {
    EXPECT_FALSE(map.Rebalance(load, t)) << t;
  }
  EXPECT_EQ(map.version(), 0u);
  EXPECT_TRUE(map.history().empty());
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 4, 8, 12, 16}));

  // Zero load is a no-op too (no evidence, no action).
  std::vector<std::int64_t> empty(map.num_buckets(), 0);
  EXPECT_FALSE(map.Rebalance(empty, 10));
  EXPECT_EQ(map.version(), 0u);
}

TEST(AdaptivePartitionMapTest, SplitsHotRangeAndCoalescesColdestPair) {
  // 4 partitions x 4 buckets. All of the heat sits in partition 0's
  // buckets, spread evenly, so the load-weighted midpoint cuts the range
  // in half; the coldest adjacent pair (1,2) is coalesced to pay for it.
  AdaptivePartitionMap map({.partitions = 4, .num_buckets = 16});
  std::vector<std::int64_t> load(map.num_buckets(), 1);
  for (std::size_t b = 0; b < 4; ++b) load[b] = 25;

  ASSERT_TRUE(map.Rebalance(load, 31));
  EXPECT_EQ(map.version(), 1u);
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 2, 4, 12, 16}));
  ExpectInvariants(map);

  ASSERT_EQ(map.history().size(), 1u);
  const AdaptivePartitionMap::RebalanceAction& action = map.history()[0];
  EXPECT_EQ(action.version, 1u);
  EXPECT_EQ(action.step, 31);
  EXPECT_EQ(action.coalesced_left, 1);
  EXPECT_EQ(action.removed_boundary, 8u);
  EXPECT_EQ(action.split_partition, 0);
  EXPECT_EQ(action.split_boundary, 2u);
  EXPECT_EQ(action.hot_load, 100);
  EXPECT_EQ(action.cold_load, 8);
  EXPECT_EQ(action.total_load, 112);

  // The evolved bounds halve the max/mean ratio the static bounds see on
  // this window.
  EXPECT_LT(map.LoadRatio(load), map.StaticLoadRatio(load));
  EXPECT_NEAR(map.StaticLoadRatio(load), 100.0 * 4 / 112, 1e-12);
  EXPECT_NEAR(map.LoadRatio(load), 50.0 * 4 / 112, 1e-12);
}

TEST(AdaptivePartitionMapTest, StationaryHotSpotConvergesToAFixedPoint) {
  // Feeding the same skewed window repeatedly must reach a fixed point:
  // once the hot range is a single bucket (or the only move would undo
  // the coalesce it pays for), Rebalance reports no change — the map may
  // not oscillate between layouts on a stationary workload.
  AdaptivePartitionMap map({.partitions = 4, .num_buckets = 16});
  std::vector<std::int64_t> load(map.num_buckets(), 1);
  for (std::size_t b = 0; b < 4; ++b) load[b] = 25;

  int rebalances = 0;
  for (Time t = 0; t < 20; ++t) {
    if (map.Rebalance(load, t)) ++rebalances;
  }
  EXPECT_EQ(rebalances, 2);
  EXPECT_EQ(map.version(), 2u);
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 1, 2, 4, 16}));
  ExpectInvariants(map);
  // And it stays put.
  EXPECT_FALSE(map.Rebalance(load, 100));
  EXPECT_EQ(map.version(), 2u);
}

TEST(AdaptivePartitionMapTest, SingleHotBucketIsIrreducible) {
  // All heat in one bucket: after the first split isolates it there is
  // nothing left to cut, so the map must go quiet instead of churning.
  AdaptivePartitionMap map({.partitions = 4, .num_buckets = 16});
  std::vector<std::int64_t> load(map.num_buckets(), 1);
  load[0] = 100;

  ASSERT_TRUE(map.Rebalance(load, 0));
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 1, 4, 12, 16}));
  for (Time t = 1; t < 10; ++t) {
    EXPECT_FALSE(map.Rebalance(load, t)) << t;
  }
  EXPECT_EQ(map.version(), 1u);
  ExpectInvariants(map);
}

TEST(AdaptivePartitionMapTest, TwoPartitionsRedistributeByBoundaryMove) {
  // With P=2 every adjacent pair contains the hot range, so the normal
  // coalesce+split cannot apply; the fallback merges hot with its
  // neighbor and re-splits the union at the weighted midpoint — a pure
  // boundary move that isolates the hot bucket.
  AdaptivePartitionMap map({.partitions = 2, .num_buckets = 8});
  ASSERT_EQ(map.bounds(), (std::vector<std::size_t>{0, 4, 8}));
  std::vector<std::int64_t> load(map.num_buckets(), 0);
  load[0] = 90;
  load[5] = 10;

  ASSERT_TRUE(map.Rebalance(load, 0));
  EXPECT_EQ(map.bounds(), (std::vector<std::size_t>{0, 1, 8}));
  EXPECT_EQ(map.num_partitions(), 2u);
  ExpectInvariants(map);
  // Fixed point: re-splitting [0,8) again would cut at the boundary it
  // just removed (an identity), which must be reported as no change.
  EXPECT_FALSE(map.Rebalance(load, 1));
  EXPECT_EQ(map.version(), 1u);
}

TEST(AdaptivePartitionMapTest, DeterministicAcrossRerunsAndResettable) {
  AdaptivePartitionMap::Options options{.partitions = 4, .num_buckets = 32};
  AdaptivePartitionMap a(options);
  AdaptivePartitionMap b(options);

  // A drifting hot spot: the heat moves one bucket to the right each
  // window. Both maps see the identical history and must make identical
  // decisions at every step.
  std::vector<std::int64_t> load(a.num_buckets(), 0);
  for (Time t = 0; t < 24; ++t) {
    load.assign(a.num_buckets(), 1);
    load[static_cast<std::size_t>(t) % a.num_buckets()] = 60;
    bool changed_a = a.Rebalance(load, t);
    bool changed_b = b.Rebalance(load, t);
    ASSERT_EQ(changed_a, changed_b) << t;
    ASSERT_EQ(a.bounds(), b.bounds()) << t;
  }
  EXPECT_GT(a.version(), 0u);
  EXPECT_EQ(a.version(), b.version());
  EXPECT_EQ(a.history(), b.history());
  ExpectInvariants(a);

  // Reset rewinds to the equal-width layout; replaying the same history
  // then reproduces the same actions.
  std::vector<AdaptivePartitionMap::RebalanceAction> history = a.history();
  a.Reset();
  EXPECT_EQ(a.version(), 0u);
  EXPECT_TRUE(a.history().empty());
  EXPECT_EQ(a.bounds(), (std::vector<std::size_t>{0, 8, 16, 24, 32}));
  for (Time t = 0; t < 24; ++t) {
    load.assign(a.num_buckets(), 1);
    load[static_cast<std::size_t>(t) % a.num_buckets()] = 60;
    a.Rebalance(load, t);
  }
  EXPECT_EQ(a.history(), history);
}

TEST(AdaptivePartitionMapTest, SinglePartitionNeverRebalances) {
  AdaptivePartitionMap map({.partitions = 1, .num_buckets = 8});
  std::vector<std::int64_t> load(map.num_buckets(), 0);
  load[0] = 1000;
  EXPECT_FALSE(map.Rebalance(load, 0));
  EXPECT_EQ(map.num_partitions(), 1u);
  for (Value v = -50; v < 50; ++v) EXPECT_EQ(map.PartitionOf(v), 0u);
}

}  // namespace
}  // namespace sjoin
