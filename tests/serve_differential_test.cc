// Differential suite for the session service: N concurrent sessions
// multiplexed through a serve::SessionScheduler — random WRR quotas,
// weights, worker counts, chunked arrival interleavings, and watermark
// shedding — against a solo StreamEngine batch run per session on exactly
// the arrivals the scheduler accepted, comparing per-step
// retained/cache/produced traces bit for bit plus the scheduler's
// accounting invariants. (The SJOIN_DIFF_SERVE env hook forces every
// trial onto 4 worker engines; the TSan job sets it so the round fan-out
// runs under the race detector.)

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(ServeDifferentialTest, MultiplexedSessionsMatchSoloRunsBitForBit) {
  const DifferentialSuite* suite = FindDifferentialSuite("serve_scheduler");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
