// Differential suite for the min-cost-flow solver against exhaustive
// matching enumeration on random assignment networks.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

TEST(DifferentialFlowTest, MinCostFlowMatchesBruteForce) {
  const DifferentialSuite* suite = FindDifferentialSuite("min_cost_flow");
  ASSERT_NE(suite, nullptr);
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
