// Section 5 case studies: the framework's dominance tests rederive the
// classic optimal policies in each scenario.

#include <gtest/gtest.h>

#include <vector>

#include "sjoin/core/dominance.h"
#include "sjoin/core/ecb.h"
#include "sjoin/stochastic/linear_trend_process.h"
#include "sjoin/stochastic/offline_process.h"
#include "sjoin/stochastic/random_walk_process.h"
#include "sjoin/stochastic/stationary_process.h"

namespace sjoin {
namespace {

// --- 5.1 Offline streams -------------------------------------------------

TEST(OfflineCaseStudy, CachingDominanceIsTotalOrderByForwardDistance) {
  // ECBs are single-step functions; dominance orders by next reference
  // time, recovering Belady's LFD.
  OfflineProcess reference({4, 1, 2, 3, 1, 2, 4});
  StreamHistory history({4});
  constexpr Time kHorizon = 6;
  auto b1 = MakeCachingEcb(reference, history, 0, 1, kHorizon);  // Next t=1.
  auto b2 = MakeCachingEcb(reference, history, 0, 2, kHorizon);  // t=2.
  auto b3 = MakeCachingEcb(reference, history, 0, 3, kHorizon);  // t=3.
  auto b4 = MakeCachingEcb(reference, history, 0, 4, kHorizon);  // t=6.
  EXPECT_TRUE(MeansDominates(CompareEcb(b1, b2, kHorizon)));
  EXPECT_TRUE(MeansDominates(CompareEcb(b2, b3, kHorizon)));
  EXPECT_TRUE(MeansDominates(CompareEcb(b3, b4, kHorizon)));
  EXPECT_FALSE(MeansDominates(CompareEcb(b4, b3, kHorizon)));
}

TEST(OfflineCaseStudy, JoiningEcbsAreStepFunctionsAndMayBeIncomparable) {
  // S produces 7 early once; 8 late twice: step curves cross.
  OfflineProcess partner({0, 7, 0, 0, 8, 8});
  StreamHistory history({0});
  constexpr Time kHorizon = 5;
  auto b7 = MakeJoiningEcb(partner, history, 0, 7, kHorizon);
  auto b8 = MakeJoiningEcb(partner, history, 0, 8, kHorizon);
  EXPECT_DOUBLE_EQ(b7.At(1), 1.0);
  EXPECT_DOUBLE_EQ(b7.At(5), 1.0);
  EXPECT_DOUBLE_EQ(b8.At(3), 0.0);
  EXPECT_DOUBLE_EQ(b8.At(5), 2.0);
  EXPECT_EQ(CompareEcb(b7, b8, kHorizon), Dominance::kIncomparable);
}

// --- 5.2 Stationary independent streams ----------------------------------

TEST(StationaryCaseStudy, CachingDominanceOrdersByReferenceProbability) {
  StationaryProcess reference(
      DiscreteDistribution::FromMasses(0, {0.5, 0.3, 0.2}));
  StreamHistory history({0});
  constexpr Time kHorizon = 50;
  auto b0 = MakeCachingEcb(reference, history, 0, 0, kHorizon);
  auto b1 = MakeCachingEcb(reference, history, 0, 1, kHorizon);
  auto b2 = MakeCachingEcb(reference, history, 0, 2, kHorizon);
  // A0 / LFU: discard the lowest reference probability.
  EXPECT_EQ(CompareEcb(b0, b1, kHorizon), Dominance::kStrictlyDominates);
  EXPECT_EQ(CompareEcb(b1, b2, kHorizon), Dominance::kStrictlyDominates);
}

TEST(StationaryCaseStudy, JoiningDominanceOrdersByMatchProbability) {
  StationaryProcess partner(
      DiscreteDistribution::FromMasses(0, {0.5, 0.3, 0.2}));
  StreamHistory history({0});
  constexpr Time kHorizon = 50;
  auto b0 = MakeJoiningEcb(partner, history, 0, 0, kHorizon);
  auto b1 = MakeJoiningEcb(partner, history, 0, 1, kHorizon);
  // PROB: B(dt) = p * dt, totally ordered by p.
  EXPECT_EQ(CompareEcb(b0, b1, kHorizon), Dominance::kStrictlyDominates);
}

// --- 5.3 Linear trend, bounded uniform noise ------------------------------

class TrendUniformCaseStudy : public ::testing::Test {
 protected:
  static constexpr Value kW = 5;
  static constexpr Time kT0 = 50;
  static constexpr Time kHorizon = 30;

  TrendUniformCaseStudy()
      : reference_(1.0, 0.0,
                   DiscreteDistribution::BoundedUniform(-kW, kW)) {}

  TabulatedEcb CachingEcbOf(Value v) {
    StreamHistory empty;
    return MakeCachingEcb(reference_, empty, kT0, v, kHorizon);
  }

  LinearTrendProcess reference_;
};

TEST_F(TrendUniformCaseStudy, Category1TuplesHaveZeroEcb) {
  // v < f(t0) - w: the window has passed; ECB identically zero.
  auto missed = CachingEcbOf(kT0 - kW - 3);
  EXPECT_DOUBLE_EQ(missed.At(kHorizon), 0.0);
}

TEST_F(TrendUniformCaseStudy, SmallestValueIsOptimalDiscard) {
  // Section 5.3: discard the tuple with the smallest join attribute value.
  std::vector<Value> values = {kT0 - kW - 2, kT0 - 2, kT0 + 1, kT0 + kW};
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    auto lo = CachingEcbOf(values[i]);
    auto hi = CachingEcbOf(values[i + 1]);
    EXPECT_TRUE(MeansDominates(CompareEcb(hi, lo, kHorizon)))
        << values[i + 1] << " should dominate " << values[i];
  }
}

// --- 5.4 Linear trend, bounded normal noise --------------------------------

TEST(TrendNormalCaseStudy, FartherBehindTheTrendIsDominated) {
  // Appendix P: for two R tuples both left of f_S(t), the farther one is
  // strictly dominated.
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 2.0, -10, 10));
  StreamHistory empty;
  constexpr Time kT0 = 100;
  constexpr Time kHorizon = 25;
  auto near_behind = MakeJoiningEcb(s, empty, kT0, kT0 - 3, kHorizon);
  auto far_behind = MakeJoiningEcb(s, empty, kT0, kT0 - 7, kHorizon);
  EXPECT_TRUE(MeansDominates(CompareEcb(near_behind, far_behind, kHorizon)));
}

TEST(TrendNormalCaseStudy, AheadVersusBehindMayBeIncomparable) {
  // A tuple close behind the moving pdf scores now; one ahead scores later:
  // the curves cross (the x vs z dilemma of Section 4.1).
  LinearTrendProcess s(1.0, 0.0, DiscreteDistribution::TruncatedDiscretizedNormal(
                                     0.0, 2.0, -10, 10));
  StreamHistory empty;
  constexpr Time kT0 = 100;
  constexpr Time kHorizon = 25;
  auto behind = MakeJoiningEcb(s, empty, kT0, kT0 + 1, kHorizon);
  auto ahead = MakeJoiningEcb(s, empty, kT0, kT0 + 9, kHorizon);
  EXPECT_EQ(CompareEcb(behind, ahead, kHorizon), Dominance::kIncomparable);
}

// --- 5.5 Random walk -------------------------------------------------------

TEST(WalkCaseStudy, JoiningEcbRanksByDistanceForZeroDrift) {
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(0.0, 1.0),
                         0);
  StreamHistory history({10});  // Walk currently at 10; t0 = 0.
  constexpr Time kHorizon = 30;
  auto at10 = MakeJoiningEcb(walk, history, 0, 10, kHorizon);
  auto at12 = MakeJoiningEcb(walk, history, 0, 12, kHorizon);
  auto at15 = MakeJoiningEcb(walk, history, 0, 15, kHorizon);
  EXPECT_TRUE(MeansDominates(CompareEcb(at10, at12, kHorizon)));
  EXPECT_TRUE(MeansDominates(CompareEcb(at12, at15, kHorizon)));
  auto at8 = MakeJoiningEcb(walk, history, 0, 8, kHorizon);
  EXPECT_TRUE(MeansDominates(CompareEcb(at8, at15, kHorizon)));
}

TEST(WalkCaseStudy, DriftBreaksDominanceBetweenStraddlingValues) {
  // Appendix Q: with positive drift, a value just behind the walk beats a
  // value ahead early but loses later — incomparable.
  RandomWalkProcess walk(DiscreteDistribution::DiscretizedNormal(1.0, 1.0),
                         0);
  StreamHistory history({0});
  constexpr Time kHorizon = 30;
  auto behind = MakeJoiningEcb(walk, history, 0, 1, kHorizon);
  auto ahead = MakeJoiningEcb(walk, history, 0, 12, kHorizon);
  EXPECT_EQ(CompareEcb(behind, ahead, kHorizon), Dominance::kIncomparable);
}

}  // namespace
}  // namespace sjoin
