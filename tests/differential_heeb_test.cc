// Differential suites for HEEB scoring: the tabulated / closed-form /
// incremental implementations against from-scratch naive recomputation.
// Trial counts come from SJOIN_DIFF_TRIALS when set (CI sanitizer jobs run
// reduced counts); failures print the reproducing fuzz_differential
// command.

#include <gtest/gtest.h>

#include "sjoin/testing/differential.h"

namespace sjoin {
namespace testing {
namespace {

void RunSuite(const char* name) {
  const DifferentialSuite* suite = FindDifferentialSuite(name);
  ASSERT_NE(suite, nullptr) << name;
  DifferentialReport report = RunDifferentialSuite(
      *suite, kDifferentialBaseSeed, TrialCountFromEnv(suite->default_trials));
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialHeebTest, EcbHeebScoringMatchesNaive) {
  RunSuite("ecb_heeb_scoring");
}

TEST(DifferentialHeebTest, HeebPolicyJoinMatchesNaive) {
  RunSuite("heeb_policy_join");
}

}  // namespace
}  // namespace testing
}  // namespace sjoin
