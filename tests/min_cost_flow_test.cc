#include "sjoin/flow/min_cost_flow.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/flow/flow_graph.h"

namespace sjoin {
namespace {

// Optimality certificate: a flow of value f is minimum-cost among flows of
// value f iff the residual graph contains no negative-cost cycle.
bool ResidualHasNegativeCycle(const FlowGraph& graph) {
  int n = graph.NumNodes();
  std::vector<double> dist(static_cast<std::size_t>(n), 0.0);
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (int u = 0; u < n; ++u) {
      for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
        if (arc.capacity <= 0) continue;
        double nd = dist[static_cast<std::size_t>(u)] + arc.cost;
        if (nd < dist[static_cast<std::size_t>(arc.to)] - 1e-9) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

TEST(FlowGraphTest, ArcAndResidualBookkeeping) {
  FlowGraph graph;
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  std::int32_t arc = graph.AddArc(a, b, 3, 1.5);
  EXPECT_EQ(graph.FlowOn(a, arc), 0);
  EXPECT_EQ(graph.NumNodes(), 2);
  EXPECT_EQ(graph.AdjacencyOf(a).size(), 1u);
  EXPECT_EQ(graph.AdjacencyOf(b).size(), 1u);  // Residual twin.
  EXPECT_FALSE(graph.AdjacencyOf(b)[0].is_forward);
}

TEST(MinCostFlowTest, SingleArc) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  std::int32_t arc = graph.AddArc(s, t, 5, 2.0);
  auto result = SolveMinCostFlow(graph, s, t, 3);
  EXPECT_EQ(result.flow, 3);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(graph.FlowOn(s, arc), 3);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 1, 0.0);
  graph.AddArc(a, t, 1, 10.0);
  graph.AddArc(s, b, 1, 0.0);
  graph.AddArc(b, t, 1, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
}

TEST(MinCostFlowTest, NegativeCostsHandled) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 2, 0.0);
  graph.AddArc(a, b, 2, -5.0);
  graph.AddArc(b, t, 2, 0.0);
  graph.AddArc(s, t, 2, -1.0);
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, -10.0);
}

TEST(MinCostFlowTest, InfeasibleTargetReturnsMaxFlow) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, t, 2, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 10);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

TEST(MinCostFlowTest, RerouteThroughResidualArcs) {
  // Classic instance where the second augmentation must push back along
  // the first path's residual arcs.
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 1, 1.0);
  graph.AddArc(s, b, 1, 4.0);
  graph.AddArc(a, b, 1, -3.0);
  graph.AddArc(a, t, 1, 10.0);
  graph.AddArc(b, t, 2, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  // Optimal: s-a-b-t (cost -1) and s-b-t (cost 5) = 4.
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
  EXPECT_FALSE(ResidualHasNegativeCycle(graph));
}

TEST(MinCostFlowTest, RandomDagsSatisfyOptimalityCertificate) {
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    FlowGraph graph;
    int layers = 4;
    int width = 3;
    std::vector<std::vector<NodeId>> layer_nodes(
        static_cast<std::size_t>(layers));
    NodeId s = graph.AddNode();
    NodeId t = graph.AddNode();
    for (int l = 0; l < layers; ++l) {
      for (int w = 0; w < width; ++w) {
        layer_nodes[static_cast<std::size_t>(l)].push_back(graph.AddNode());
      }
    }
    for (NodeId n : layer_nodes[0]) graph.AddArc(s, n, 1, 0.0);
    for (NodeId n : layer_nodes.back()) graph.AddArc(n, t, 1, 0.0);
    for (int l = 0; l + 1 < layers; ++l) {
      for (NodeId u : layer_nodes[static_cast<std::size_t>(l)]) {
        for (NodeId v : layer_nodes[static_cast<std::size_t>(l + 1)]) {
          if (rng.UniformReal() < 0.7) {
            double cost = static_cast<double>(rng.UniformInt(-5, 5));
            graph.AddArc(u, v, 1, cost);
          }
        }
      }
    }
    auto result = SolveMinCostFlow(graph, s, t, 3);
    EXPECT_FALSE(ResidualHasNegativeCycle(graph))
        << "trial " << trial << " flow " << result.flow;
  }
}

TEST(MinCostFlowTest, IntegralFlowOnUnitCapacityGraph) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  std::vector<std::pair<NodeId, std::int32_t>> arcs;
  for (int i = 0; i < 4; ++i) {
    NodeId mid = graph.AddNode();
    std::int32_t in = graph.AddArc(s, mid, 1, static_cast<double>(i) - 2.0);
    graph.AddArc(mid, t, 1, 0.0);
    arcs.push_back({s, in});
  }
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, -3.0);  // Costs -2 and -1.
  for (auto [from, arc] : arcs) {
    std::int64_t f = graph.FlowOn(from, arc);
    EXPECT_TRUE(f == 0 || f == 1);
  }
}

TEST(MinCostFlowTest, ZeroTargetFlow) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, t, 1, -100.0);
  auto result = SolveMinCostFlow(graph, s, t, 0);
  EXPECT_EQ(result.flow, 0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

// ---------------------------------------------------------------------------
// MinCostFlowSolver reuse: one solver instance carried across many solves
// must behave exactly like a cold SolveMinCostFlow on every instance.
// ---------------------------------------------------------------------------

struct RandomInstance {
  FlowGraph graph;
  NodeId source = 0;
  NodeId sink = 0;
  std::int64_t target = 0;
};

// Deterministic in `seed`, so calling it twice yields identical graphs.
// Varies size, mixes negative arc costs, and picks targets that sometimes
// exceed the max flow (saturating the sink-side cut).
RandomInstance MakeRandomInstance(std::uint64_t seed) {
  Rng rng(seed);
  RandomInstance inst;
  int layers = static_cast<int>(rng.UniformInt(2, 4));
  int width = static_cast<int>(rng.UniformInt(2, 4));
  inst.source = inst.graph.AddNode();
  inst.sink = inst.graph.AddNode();
  std::vector<std::vector<NodeId>> layer_nodes(
      static_cast<std::size_t>(layers));
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      layer_nodes[static_cast<std::size_t>(l)].push_back(
          inst.graph.AddNode());
    }
  }
  for (NodeId n : layer_nodes[0]) {
    inst.graph.AddArc(inst.source, n, rng.UniformInt(1, 2), 0.0);
  }
  for (NodeId n : layer_nodes.back()) {
    inst.graph.AddArc(n, inst.sink, rng.UniformInt(1, 2),
                      static_cast<double>(rng.UniformInt(-3, 3)));
  }
  for (int l = 0; l + 1 < layers; ++l) {
    for (NodeId u : layer_nodes[static_cast<std::size_t>(l)]) {
      for (NodeId v : layer_nodes[static_cast<std::size_t>(l + 1)]) {
        if (rng.UniformReal() < 0.6) {
          inst.graph.AddArc(u, v, rng.UniformInt(1, 3),
                            static_cast<double>(rng.UniformInt(-6, 6)));
        }
      }
    }
  }
  inst.target = rng.UniformInt(1, 2 * width);
  return inst;
}

// Per-arc flows must match exactly, not just the aggregate cost.
void ExpectSameFlows(const FlowGraph& a, const FlowGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId u = 0; u < a.NumNodes(); ++u) {
    const auto& arcs_a = a.AdjacencyOf(u);
    const auto& arcs_b = b.AdjacencyOf(u);
    ASSERT_EQ(arcs_a.size(), arcs_b.size());
    for (std::size_t i = 0; i < arcs_a.size(); ++i) {
      if (!arcs_a[i].is_forward) continue;
      EXPECT_EQ(a.FlowOn(u, static_cast<std::int32_t>(i)),
                b.FlowOn(u, static_cast<std::int32_t>(i)))
          << "arc " << i << " out of node " << u;
    }
  }
}

TEST(MinCostFlowSolverTest, ReusedSolverMatchesColdSolves) {
  MinCostFlowSolver solver;
  for (std::uint64_t seed = 1; seed <= 80; ++seed) {
    RandomInstance cold = MakeRandomInstance(seed);
    RandomInstance warm = MakeRandomInstance(seed);
    auto cold_result =
        SolveMinCostFlow(cold.graph, cold.source, cold.sink, cold.target);
    auto warm_result =
        solver.Solve(warm.graph, warm.source, warm.sink, warm.target);
    EXPECT_EQ(warm_result.flow, cold_result.flow) << "seed " << seed;
    // Bitwise: the reused solver runs the identical arithmetic, only its
    // workspace allocations differ.
    EXPECT_EQ(warm_result.cost, cold_result.cost) << "seed " << seed;
    ExpectSameFlows(warm.graph, cold.graph);
    EXPECT_FALSE(ResidualHasNegativeCycle(warm.graph)) << "seed " << seed;
  }
}

struct TemplateInstance {
  FlowGraph graph;
  NodeId source = 0;
  NodeId sink = 0;
  // (from, arc index) handle for every forward arc, in insertion order.
  std::vector<std::pair<NodeId, std::int32_t>> forward_arcs;
};

// Fully-connected 3x3 layered DAG with unit capacities and placeholder
// costs, mirroring how FlowExpectPolicy keeps one skeleton per shape.
TemplateInstance MakeUnitTemplate() {
  TemplateInstance inst;
  inst.source = inst.graph.AddNode();
  inst.sink = inst.graph.AddNode();
  std::vector<std::vector<NodeId>> layer_nodes(3);
  for (auto& layer : layer_nodes) {
    for (int w = 0; w < 3; ++w) layer.push_back(inst.graph.AddNode());
  }
  auto add = [&inst](NodeId from, NodeId to) {
    inst.forward_arcs.push_back({from, inst.graph.AddArc(from, to, 1, 0.0)});
  };
  for (NodeId n : layer_nodes[0]) add(inst.source, n);
  for (int l = 0; l + 1 < 3; ++l) {
    for (NodeId u : layer_nodes[static_cast<std::size_t>(l)]) {
      for (NodeId v : layer_nodes[static_cast<std::size_t>(l + 1)]) {
        add(u, v);
      }
    }
  }
  for (NodeId n : layer_nodes.back()) add(n, inst.sink);
  return inst;
}

TEST(MinCostFlowSolverTest, CostRewriteWithTopologyHintMatchesColdSolve) {
  // The template path: solve once, then rewrite costs + reset capacities
  // and re-solve with topology_unchanged so the solver reuses its cached
  // topological order. Every round must match a cold solve of a freshly
  // built graph carrying the same costs.
  MinCostFlowSolver solver;
  TemplateInstance tpl = MakeUnitTemplate();
  Rng rng(2024);
  bool solved_before = false;
  for (int round = 0; round < 8; ++round) {
    std::vector<double> costs;
    costs.reserve(tpl.forward_arcs.size());
    for (std::size_t i = 0; i < tpl.forward_arcs.size(); ++i) {
      costs.push_back(static_cast<double>(rng.UniformInt(-6, 6)));
    }
    tpl.graph.ResetUnitCapacities();
    for (std::size_t i = 0; i < tpl.forward_arcs.size(); ++i) {
      tpl.graph.SetArcCost(tpl.forward_arcs[i].first,
                           tpl.forward_arcs[i].second, costs[i]);
    }
    MinCostFlowSolver::SolveOptions options;
    options.topology_unchanged = solved_before;
    auto warm_result = solver.Solve(tpl.graph, tpl.source, tpl.sink, 2,
                                    options);
    solved_before = true;

    TemplateInstance cold = MakeUnitTemplate();
    for (std::size_t i = 0; i < cold.forward_arcs.size(); ++i) {
      cold.graph.SetArcCost(cold.forward_arcs[i].first,
                            cold.forward_arcs[i].second, costs[i]);
    }
    auto cold_result =
        SolveMinCostFlow(cold.graph, cold.source, cold.sink, 2);
    EXPECT_EQ(warm_result.flow, cold_result.flow) << "round " << round;
    EXPECT_EQ(warm_result.cost, cold_result.cost) << "round " << round;
    ExpectSameFlows(tpl.graph, cold.graph);
  }
}

TEST(MinCostFlowSolverTest, CallerSuppliedTopologicalOrderMatchesKahn) {
  // MakeRandomInstance numbers nodes so that arcs only go from lower to
  // higher layers; {source, layer nodes in id order, sink} is therefore a
  // valid topological order.
  MinCostFlowSolver solver;
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    RandomInstance cold = MakeRandomInstance(seed);
    RandomInstance warm = MakeRandomInstance(seed);
    std::vector<NodeId> order;
    order.push_back(warm.source);
    for (NodeId v = 2; v < warm.graph.NumNodes(); ++v) order.push_back(v);
    order.push_back(warm.sink);
    MinCostFlowSolver::SolveOptions options;
    options.topological_order = &order;
    auto warm_result = solver.Solve(warm.graph, warm.source, warm.sink,
                                    warm.target, options);
    auto cold_result =
        SolveMinCostFlow(cold.graph, cold.source, cold.sink, cold.target);
    EXPECT_EQ(warm_result.flow, cold_result.flow) << "seed " << seed;
    EXPECT_EQ(warm_result.cost, cold_result.cost) << "seed " << seed;
    ExpectSameFlows(warm.graph, cold.graph);
  }
}

}  // namespace
}  // namespace sjoin
