#include "sjoin/flow/min_cost_flow.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sjoin/common/rng.h"
#include "sjoin/flow/flow_graph.h"

namespace sjoin {
namespace {

// Optimality certificate: a flow of value f is minimum-cost among flows of
// value f iff the residual graph contains no negative-cost cycle.
bool ResidualHasNegativeCycle(const FlowGraph& graph) {
  int n = graph.NumNodes();
  std::vector<double> dist(static_cast<std::size_t>(n), 0.0);
  for (int round = 0; round < n; ++round) {
    bool changed = false;
    for (int u = 0; u < n; ++u) {
      for (const FlowGraph::Arc& arc : graph.AdjacencyOf(u)) {
        if (arc.capacity <= 0) continue;
        double nd = dist[static_cast<std::size_t>(u)] + arc.cost;
        if (nd < dist[static_cast<std::size_t>(arc.to)] - 1e-9) {
          dist[static_cast<std::size_t>(arc.to)] = nd;
          changed = true;
        }
      }
    }
    if (!changed) return false;
  }
  return true;
}

TEST(FlowGraphTest, ArcAndResidualBookkeeping) {
  FlowGraph graph;
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  std::int32_t arc = graph.AddArc(a, b, 3, 1.5);
  EXPECT_EQ(graph.FlowOn(a, arc), 0);
  EXPECT_EQ(graph.NumNodes(), 2);
  EXPECT_EQ(graph.AdjacencyOf(a).size(), 1u);
  EXPECT_EQ(graph.AdjacencyOf(b).size(), 1u);  // Residual twin.
  EXPECT_FALSE(graph.AdjacencyOf(b)[0].is_forward);
}

TEST(MinCostFlowTest, SingleArc) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  std::int32_t arc = graph.AddArc(s, t, 5, 2.0);
  auto result = SolveMinCostFlow(graph, s, t, 3);
  EXPECT_EQ(result.flow, 3);
  EXPECT_DOUBLE_EQ(result.cost, 6.0);
  EXPECT_EQ(graph.FlowOn(s, arc), 3);
}

TEST(MinCostFlowTest, PrefersCheaperPath) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 1, 0.0);
  graph.AddArc(a, t, 1, 10.0);
  graph.AddArc(s, b, 1, 0.0);
  graph.AddArc(b, t, 1, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 1);
  EXPECT_EQ(result.flow, 1);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
}

TEST(MinCostFlowTest, NegativeCostsHandled) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 2, 0.0);
  graph.AddArc(a, b, 2, -5.0);
  graph.AddArc(b, t, 2, 0.0);
  graph.AddArc(s, t, 2, -1.0);
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, -10.0);
}

TEST(MinCostFlowTest, InfeasibleTargetReturnsMaxFlow) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, t, 2, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 10);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, 2.0);
}

TEST(MinCostFlowTest, RerouteThroughResidualArcs) {
  // Classic instance where the second augmentation must push back along
  // the first path's residual arcs.
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId a = graph.AddNode();
  NodeId b = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, a, 1, 1.0);
  graph.AddArc(s, b, 1, 4.0);
  graph.AddArc(a, b, 1, -3.0);
  graph.AddArc(a, t, 1, 10.0);
  graph.AddArc(b, t, 2, 1.0);
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  // Optimal: s-a-b-t (cost -1) and s-b-t (cost 5) = 4.
  EXPECT_DOUBLE_EQ(result.cost, 4.0);
  EXPECT_FALSE(ResidualHasNegativeCycle(graph));
}

TEST(MinCostFlowTest, RandomDagsSatisfyOptimalityCertificate) {
  Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    FlowGraph graph;
    int layers = 4;
    int width = 3;
    std::vector<std::vector<NodeId>> layer_nodes(
        static_cast<std::size_t>(layers));
    NodeId s = graph.AddNode();
    NodeId t = graph.AddNode();
    for (int l = 0; l < layers; ++l) {
      for (int w = 0; w < width; ++w) {
        layer_nodes[static_cast<std::size_t>(l)].push_back(graph.AddNode());
      }
    }
    for (NodeId n : layer_nodes[0]) graph.AddArc(s, n, 1, 0.0);
    for (NodeId n : layer_nodes.back()) graph.AddArc(n, t, 1, 0.0);
    for (int l = 0; l + 1 < layers; ++l) {
      for (NodeId u : layer_nodes[static_cast<std::size_t>(l)]) {
        for (NodeId v : layer_nodes[static_cast<std::size_t>(l + 1)]) {
          if (rng.UniformReal() < 0.7) {
            double cost = static_cast<double>(rng.UniformInt(-5, 5));
            graph.AddArc(u, v, 1, cost);
          }
        }
      }
    }
    auto result = SolveMinCostFlow(graph, s, t, 3);
    EXPECT_FALSE(ResidualHasNegativeCycle(graph))
        << "trial " << trial << " flow " << result.flow;
  }
}

TEST(MinCostFlowTest, IntegralFlowOnUnitCapacityGraph) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  std::vector<std::pair<NodeId, std::int32_t>> arcs;
  for (int i = 0; i < 4; ++i) {
    NodeId mid = graph.AddNode();
    std::int32_t in = graph.AddArc(s, mid, 1, static_cast<double>(i) - 2.0);
    graph.AddArc(mid, t, 1, 0.0);
    arcs.push_back({s, in});
  }
  auto result = SolveMinCostFlow(graph, s, t, 2);
  EXPECT_EQ(result.flow, 2);
  EXPECT_DOUBLE_EQ(result.cost, -3.0);  // Costs -2 and -1.
  for (auto [from, arc] : arcs) {
    std::int64_t f = graph.FlowOn(from, arc);
    EXPECT_TRUE(f == 0 || f == 1);
  }
}

TEST(MinCostFlowTest, ZeroTargetFlow) {
  FlowGraph graph;
  NodeId s = graph.AddNode();
  NodeId t = graph.AddNode();
  graph.AddArc(s, t, 1, -100.0);
  auto result = SolveMinCostFlow(graph, s, t, 0);
  EXPECT_EQ(result.flow, 0);
  EXPECT_DOUBLE_EQ(result.cost, 0.0);
}

}  // namespace
}  // namespace sjoin
